//! `vmt-experiments` — regenerate any table or figure of the VMT paper,
//! or drive a single instrumented run.
//!
//! ```text
//! vmt-experiments <id> [--servers N] [--seeds K] [--threads T]
//! vmt-experiments all [--servers N]
//! vmt-experiments run [--policy NAME] [--gv F] [--servers N] [--hours H]
//!                     [--seed S] [--threads T] [--zones] [--telemetry FILE]
//!                     [--snapshot-every N] [--progress [N]]
//!                     [--series [CAP]] [--dashboard [N]]
//!                     [--metrics-addr HOST:PORT]
//!                     [--watchdogs] [--red-line C]
//!                     [--flight-dump FILE] [--flight-capacity N]
//!                     [--trace FILE] [--trace-sample N] [--trace-jobs IDS]
//! vmt-experiments record TRACE [--policy NAME] [--gv F] [--servers N]
//!                     [--hours H] [--seed S] [--threads T]
//! vmt-experiments replay TRACE [--until TICK] [--threads T]
//! vmt-experiments snapshot FILE (--at TICK | --from-flight DUMP)
//!                     [--policy NAME] [--gv F] [--servers N] [--hours H]
//!                     [--seed S] [--threads T] [--zones]
//! vmt-experiments resume FILE [--until TICK] [--threads T]
//! vmt-experiments explain JOB_ID TRACE
//! vmt-experiments check-telemetry FILE
//! vmt-experiments check-flight FILE
//! vmt-experiments check-bench FILE
//! vmt-experiments check-metrics FILE [--require FAMILIES]
//! vmt-experiments check-trace FILE
//! ```
//!
//! IDs: `table1 table2 fig1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 tco ablations
//! emergency bound qos preserve estimator`.
//!
//! `--servers` overrides the cluster size (paper defaults: 1,000 for
//! fig12/13/15/16 and tco, 100 for everything simulation-backed).
//!
//! `--threads` sets the worker count of the sharded physics tick
//! (equivalent to exporting `VMT_THREADS`). Results are bit-identical
//! at any value; only wall-clock time changes. The sweep runner keeps
//! sweep-workers x tick-threads within the machine's parallelism.
//!
//! Unrecognized flags are errors, not silently ignored — a typo like
//! `--sevrers` must not quietly run the default cluster size.

use std::collections::HashMap;
use vmt_experiments::heatmaps::HeatmapFigure;
use vmt_experiments::runner::Run;
use vmt_experiments::*;

const EXPERIMENT_IDS: [&str; 26] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "tco",
    "ablations",
    "emergency",
    "bound",
    "qos",
    "preserve",
    "estimator",
];

fn print_help() {
    println!("vmt-experiments — VMT paper reproduction harness");
    println!();
    println!("usage:");
    println!("  vmt-experiments <id|all> [--servers N] [--seeds K] [--threads T]");
    println!("  vmt-experiments run [options]");
    println!("  vmt-experiments record TRACE [options]");
    println!("  vmt-experiments replay TRACE [--until TICK] [--threads T]");
    println!("  vmt-experiments snapshot FILE (--at TICK | --from-flight DUMP) [options]");
    println!("  vmt-experiments resume FILE [--until TICK] [--threads T]");
    println!("  vmt-experiments explain JOB_ID TRACE");
    println!("  vmt-experiments check-telemetry FILE");
    println!("  vmt-experiments check-flight FILE");
    println!("  vmt-experiments check-bench FILE");
    println!("  vmt-experiments check-metrics FILE [--require FAMILIES]");
    println!("  vmt-experiments check-trace FILE");
    println!("  vmt-experiments --help");
    println!();
    println!("experiment ids:");
    println!("  {}", EXPERIMENT_IDS.join(" "));
    println!();
    println!("run options (single instrumented simulation):");
    println!("  --policy NAME        round-robin | coolest-first | vmt-ta | vmt-wa |");
    println!("                       adaptive-gv | vmt-preserve   (default vmt-wa)");
    println!("  --gv F               grouping value (default 22)");
    println!("  --servers N          cluster size (default 1000)");
    println!("  --hours H            trace horizon in simulated hours (default 48)");
    println!("  --seed S             workload seed (default: paper default)");
    println!("  --threads T          physics worker threads (results bit-identical)");
    println!("  --zones              attach the paper-default rack/row/zone topology");
    println!("                       (per-zone CRAC integrators; observational only,");
    println!("                       placements and digests are unchanged)");
    println!("  --telemetry FILE     write a JSONL event stream to FILE");
    println!("  --snapshot-every N   snapshot cadence in ticks (default 60 = hourly)");
    println!("  --progress [N]       live progress line every N ticks (default 60)");
    println!("  --series [CAP]       record per-tick time series (cooling load, mean");
    println!("                       air, melted fraction, spills, per-zone temps) in");
    println!("                       ring buffers of CAP samples (default 2880 = 48 h)");
    println!("  --dashboard [N]      live terminal dashboard redrawn every N ticks");
    println!("                       (default 60); implies --series, degrades to plain");
    println!("                       progress lines on dumb terminals and pipes");
    println!("  --metrics-addr A     serve GET /metrics (OpenMetrics text) on A, e.g.");
    println!("                       127.0.0.1:9184; refreshed at the snapshot cadence");
    println!("  --watchdogs          arm the anomaly watchdogs (thermal red-line,");
    println!("                       wax stall, QoS spill storm, hot-group thrash)");
    println!("  --red-line C         thermal-violation red-line in deg C (default 45)");
    println!("  --flight-dump FILE   arm the flight recorder; the end-of-run dump");
    println!("                       goes to FILE, watchdog dumps to FILE.anomaly<N>");
    println!("  --flight-capacity N  flight ring capacity in records (default 65536)");
    println!("  --trace FILE         record deterministic span traces and write them");
    println!("                       to FILE as Chrome trace-event JSON (loadable in");
    println!("                       Perfetto / chrome://tracing); per-tick phase and");
    println!("                       per-zone spans, placement + decision instants");
    println!("  --trace-sample N     trace every Nth job's placement decision");
    println!("                       (default 1 = every job; 0 = only --trace-jobs)");
    println!("  --trace-jobs IDS     comma-separated job ids to always trace, on top");
    println!("                       of the sample (alone it implies --trace-sample 0)");
    println!();
    println!("record writes the run's placement-decision trace to TRACE (same");
    println!("  --policy/--gv/--servers/--hours/--seed options as run; servers");
    println!("  default to 100 and hours to 24 to keep traces small).");
    println!("replay re-drives a simulation from TRACE, bypassing the policy, and");
    println!("  verifies per-tick state digests; --until TICK replays only the");
    println!("  first TICK ticks to bisect a divergence. Exits 1 on divergence.");
    println!();
    println!("snapshot runs a simulation up to a tick and writes a restorable");
    println!("  checkpoint to FILE (same --policy/--gv/--servers/--hours/--seed");
    println!("  options as record); --from-flight takes the tick from a flight-");
    println!("  recorder dump's header, so a run can be checkpointed exactly where");
    println!("  a watchdog fired.");
    println!("resume restores a checkpoint and steps it forward; --until TICK stops");
    println!("  early and prints the state digest there (restored runs are");
    println!("  bit-identical to uninterrupted ones at any --threads value).");
    println!();
    println!("check-telemetry validates a JSONL stream written by `run --telemetry`:");
    println!("  RunConfig first, Summary last, schema versions consistent; exits 1");
    println!("  when the stream is invalid or the run recorded sink write errors.");
    println!("check-flight validates a flight-recorder dump written by");
    println!("  `run --flight-dump` (header line, records, tick ordering).");
    println!("check-bench validates an engine benchmark artifact (BENCH_engine.json):");
    println!("  schema, per-row sanity, identical placements across thread counts,");
    println!("  no scaling inversion (threads=N >= 0.9x threads=1 ticks/s), the");
    println!("  10k/100k vmt-wa groups present at threads 1/2/4/8, the 100k");
    println!("  48h rows under the wall-clock regression ceiling, and the zoned");
    println!("  10k observability and tracing overhead rows under their 5% gates.");
    println!("check-metrics validates an OpenMetrics exposition (a `/metrics` scrape");
    println!("  saved to FILE, or `-` for stdin) with the strict in-repo parser;");
    println!("  --require F1,F2 additionally demands those metric families.");
    println!("check-trace validates a Chrome trace-event file written by");
    println!("  `run --trace` (FILE, or `-` for stdin): strict parse, span nesting");
    println!("  per lane, unique (tick, seq) ids, payload fields per category.");
    println!("explain reconstructs a job's placement from a trace written by");
    println!("  `run --trace`: arrival tick, the scheduler rung that placed it, the");
    println!("  top-k candidate servers with their tournament keys, the chosen");
    println!("  server and its winning key, and the zone it landed in. TRACE is a");
    println!("  file path or `-` for stdin; exits 1 when the job is not in the");
    println!("  trace (raise the sample with --trace-sample or pin the id with");
    println!("  --trace-jobs).");
    println!();
    println!("exit codes (all check-* and explain): 0 = valid, 1 = invalid input or");
    println!("  job/family not found, 2 = usage error (unknown flag, missing file).");
}

/// Exits with a usage error (status 2).
fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("run `vmt-experiments --help` for usage");
    std::process::exit(2);
}

/// Strict `--flag value` parser: every argument must be a known flag,
/// and every flag requires a value except the switches (`--watchdogs`,
/// `--zones`) and the default-carrying cadence flags (`--progress`,
/// `--dashboard`, `--series`). Returns the flag→value map; exits with a
/// usage error otherwise.
fn parse_flags(args: &[String], known: &[&str]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if !known.contains(&arg.as_str()) {
            die(&format!("unrecognized argument `{arg}`"));
        }
        // `--watchdogs` and `--zones` are pure switches: they never
        // consume a value.
        if arg == "--watchdogs" || arg == "--zones" {
            flags.insert(arg.clone(), String::new());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        match value {
            Some(v) => {
                flags.insert(arg.clone(), v.clone());
                i += 2;
            }
            // `--progress`/`--dashboard` alone mean "default cadence";
            // `--series` alone means "default ring capacity".
            None if arg == "--progress" || arg == "--dashboard" => {
                flags.insert(arg.clone(), "60".to_owned());
                i += 1;
            }
            None if arg == "--series" => {
                flags.insert(
                    arg.clone(),
                    vmt_telemetry::TelemetryConfig::DEFAULT_SERIES_CAPACITY.to_string(),
                );
                i += 1;
            }
            None => die(&format!("flag `{arg}` requires a value")),
        }
    }
    flags
}

/// Fetches and parses a numeric flag, exiting on malformed input.
fn numeric<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str) -> Option<T> {
    flags.get(name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("flag `{name}` got unparseable value `{v}`")))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_help();
        std::process::exit(2);
    };
    match command.as_str() {
        "--help" | "-h" | "help" => print_help(),
        "run" => cmd_run(&args[1..]),
        "record" => cmd_record(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "snapshot" => cmd_snapshot(&args[1..]),
        "resume" => cmd_resume(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "check-telemetry" => cmd_check_telemetry(&args[1..]),
        "check-flight" => cmd_check_flight(&args[1..]),
        "check-bench" => cmd_check_bench(&args[1..]),
        "check-metrics" => cmd_check_metrics(&args[1..]),
        "check-trace" => cmd_check_trace(&args[1..]),
        id => cmd_experiment(id, &args[1..]),
    }
}

/// The figure/table regeneration path (`vmt-experiments <id|all>`).
fn cmd_experiment(id: &str, rest: &[String]) {
    if id.starts_with("--") {
        die(&format!("unrecognized argument `{id}`"));
    }
    if id != "all" && !EXPERIMENT_IDS.contains(&id) {
        die(&format!("unknown experiment id `{id}`"));
    }
    let flags = parse_flags(rest, &["--servers", "--seeds", "--threads"]);
    let servers: Option<usize> = numeric(&flags, "--servers");
    let seeds: usize = numeric(&flags, "--seeds").unwrap_or(5);
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        // The experiment modules build their own `Run`s, whose default
        // tick-thread count reads VMT_THREADS — so one env write plumbs
        // the flag through every figure and sweep.
        std::env::set_var("VMT_THREADS", threads.max(1).to_string());
    }

    if id == "all" {
        for id in EXPERIMENT_IDS {
            println!("==================== {id} ====================");
            run_one(id, servers, seeds);
        }
        return;
    }
    run_one(id, servers, seeds);
}

/// A single instrumented simulation (`vmt-experiments run`).
fn cmd_run(rest: &[String]) {
    let flags = parse_flags(
        rest,
        &[
            "--policy",
            "--gv",
            "--servers",
            "--hours",
            "--seed",
            "--threads",
            "--zones",
            "--telemetry",
            "--snapshot-every",
            "--progress",
            "--series",
            "--dashboard",
            "--metrics-addr",
            "--watchdogs",
            "--red-line",
            "--flight-dump",
            "--flight-capacity",
            "--trace",
            "--trace-sample",
            "--trace-jobs",
        ],
    );
    let gv: f64 = numeric(&flags, "--gv").unwrap_or(22.0);
    let policy_name = flags.get("--policy").map_or("vmt-wa", String::as_str);
    let policy = match vmt_core::PolicyKind::parse(policy_name, gv) {
        Ok(policy) => policy,
        Err(err) => die(&err),
    };
    let servers: usize = numeric(&flags, "--servers").unwrap_or(1000);
    let hours: f64 = numeric(&flags, "--hours").unwrap_or(48.0);
    if !hours.is_finite() || hours <= 0.0 {
        die("`--hours` must be positive");
    }

    let mut run = Run::new(servers, policy);
    run.trace.horizon = vmt_units::Hours::new(hours);
    if let Some(seed) = numeric::<u64>(&flags, "--seed") {
        run.cluster.seed = seed;
        run.trace.seed = seed;
    }
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        run = run.with_tick_threads(threads);
    }
    if flags.contains_key("--zones") {
        run.cluster.topology = Some(vmt_dcsim::ZoneSpec::paper_default());
    }

    let mut telemetry = vmt_dcsim::TelemetryConfig::new();
    if let Some(path) = flags.get("--telemetry") {
        match vmt_telemetry::EventSink::to_file(std::path::Path::new(path)) {
            Ok(sink) => telemetry = telemetry.with_sink(sink),
            Err(err) => die(&format!("cannot open `{path}` for telemetry: {err}")),
        }
    }
    if let Some(every) = numeric::<u64>(&flags, "--snapshot-every") {
        telemetry = telemetry.with_snapshot_every(every);
    }
    if let Some(every) = numeric::<u64>(&flags, "--progress") {
        telemetry = telemetry.with_progress_every(every);
    }
    if let Some(capacity) = numeric::<usize>(&flags, "--series") {
        if capacity == 0 {
            die("`--series` capacity must be positive");
        }
        telemetry = telemetry.with_series(capacity);
    }
    if let Some(every) = numeric::<u64>(&flags, "--dashboard") {
        telemetry = telemetry.with_dashboard_every(every);
    }
    // The scrape endpoint: bind before the run starts so a scraper can
    // connect from tick 0; the publisher side is wait-free for the
    // tick loop (one Arc swap at the snapshot cadence).
    let mut metrics_server = None;
    if let Some(addr) = flags.get("--metrics-addr") {
        let publisher = vmt_telemetry::MetricsPublisher::new();
        match vmt_telemetry::MetricsServer::bind(addr, publisher.clone()) {
            Ok(server) => {
                eprintln!("serving metrics on http://{}/metrics", server.addr());
                metrics_server = Some(server);
            }
            Err(err) => die(&format!("cannot bind `--metrics-addr {addr}`: {err}")),
        }
        telemetry = telemetry.with_publisher(publisher);
    }
    if flags.contains_key("--watchdogs") || flags.contains_key("--red-line") {
        let mut specs = vmt_telemetry::WatchdogSpec::default_set();
        if let Some(red_line) = numeric::<f64>(&flags, "--red-line") {
            if !red_line.is_finite() {
                die("`--red-line` must be a finite temperature");
            }
            for spec in &mut specs {
                if let vmt_telemetry::WatchdogSpec::ThermalViolation { red_line_c } = spec {
                    *red_line_c = red_line;
                }
            }
        }
        telemetry = telemetry.with_watchdogs(specs);
    }
    if flags.contains_key("--flight-dump") || flags.contains_key("--flight-capacity") {
        let mut flight = vmt_dcsim::FlightConfig::default();
        if let Some(capacity) = numeric::<usize>(&flags, "--flight-capacity") {
            flight.capacity = capacity;
        }
        flight.dump_path = flags.get("--flight-dump").map(std::path::PathBuf::from);
        telemetry = telemetry.with_flight(flight);
    }
    if (flags.contains_key("--trace-sample") || flags.contains_key("--trace-jobs"))
        && !flags.contains_key("--trace")
    {
        die("`--trace-sample`/`--trace-jobs` require `--trace FILE`");
    }
    if flags.contains_key("--trace") {
        let mut spec = vmt_telemetry::TraceSpec::default();
        if let Some(jobs) = flags.get("--trace-jobs") {
            // A pinned job list alone means "only these jobs": the
            // sampler is off unless --trace-sample re-enables it.
            spec.sample_every = 0;
            spec.jobs = jobs
                .split(',')
                .map(str::trim)
                .filter(|id| !id.is_empty())
                .map(|id| {
                    id.parse().unwrap_or_else(|_| {
                        die(&format!("`--trace-jobs` got unparseable job id `{id}`"))
                    })
                })
                .collect();
        }
        if let Some(sample) = numeric::<u64>(&flags, "--trace-sample") {
            spec.sample_every = sample;
        }
        telemetry = telemetry.with_trace(spec);
    }
    let tracer = telemetry.tracer.clone();
    let summary = telemetry.summary.clone();

    let result = run.execute_with_telemetry(telemetry);

    match summary.get() {
        Some(summary) => print!("{}", vmt_telemetry::render_report(&summary)),
        None => {
            // Telemetry always deposits a summary; this is a belt for a
            // future code path that drops it.
            println!(
                "{}: {} placements, {} dropped, peak cooling {:.1} kW",
                result.scheduler_name,
                result.placements,
                result.dropped_jobs,
                result.peak_cooling().get() / 1e3
            );
        }
    }
    if let Some(path) = flags.get("--telemetry") {
        println!("telemetry stream: {path}");
    }
    if let Some(path) = flags.get("--flight-dump") {
        println!("flight dump: {path}");
    }
    if let Some(path) = flags.get("--trace") {
        match tracer.take() {
            Some(buffer) => {
                let records = buffer.records.len();
                let dropped = buffer.dropped;
                if let Err(err) = std::fs::write(path, vmt_telemetry::render_trace(&buffer)) {
                    eprintln!("error: cannot write `{path}`: {err}");
                    std::process::exit(1);
                }
                print!("trace: {path} ({records} span records");
                if dropped > 0 {
                    print!(", {dropped} dropped by the ring");
                }
                println!(")");
            }
            // Telemetry always deposits the buffer in `finish`; a miss
            // means the run aborted before its summary.
            None => {
                eprintln!("error: the run deposited no trace buffer");
                std::process::exit(1);
            }
        }
    }
    // Shut the scrape thread down only after the final exposition was
    // published, so a last scrape can observe the finished run.
    drop(metrics_server);
}

/// The leading positional argument of `record TRACE` / `replay TRACE` /
/// `check-* FILE`; exits with `usage` when it is missing or a flag.
fn positional_path<'a>(rest: &'a [String], usage: &str) -> (&'a String, &'a [String]) {
    match rest.split_first() {
        Some((path, tail)) if !path.starts_with("--") => (path, tail),
        _ => die(usage),
    }
}

/// Records a run's placement-decision trace (`vmt-experiments record`).
fn cmd_record(rest: &[String]) {
    let (trace_path, rest) = positional_path(rest, "usage: vmt-experiments record TRACE [options]");
    let flags = parse_flags(
        rest,
        &[
            "--policy",
            "--gv",
            "--servers",
            "--hours",
            "--seed",
            "--threads",
        ],
    );
    let gv: f64 = numeric(&flags, "--gv").unwrap_or(22.0);
    let policy_name = flags.get("--policy").map_or("vmt-wa", String::as_str);
    let policy = match vmt_core::PolicyKind::parse(policy_name, gv) {
        Ok(policy) => policy,
        Err(err) => die(&err),
    };
    // Smaller defaults than `run`: every decision lands in the trace
    // file, so the default trace stays in the megabytes.
    let servers: usize = numeric(&flags, "--servers").unwrap_or(100);
    let hours: f64 = numeric(&flags, "--hours").unwrap_or(24.0);
    if !hours.is_finite() || hours <= 0.0 {
        die("`--hours` must be positive");
    }

    let mut run = Run::new(servers, policy);
    run.trace.horizon = vmt_units::Hours::new(hours);
    if let Some(seed) = numeric::<u64>(&flags, "--seed") {
        run.cluster.seed = seed;
        run.trace.seed = seed;
    }
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        run = run.with_tick_threads(threads);
    }

    let handle = vmt_dcsim::TraceHandle::new();
    let recorder = vmt_dcsim::RecordingScheduler::new(policy.build(&run.cluster), handle.clone());
    let header = vmt_telemetry::replay::TraceHeader {
        schema_version: vmt_telemetry::replay::TRACE_SCHEMA_VERSION,
        policy: policy_name.to_owned(),
        servers: servers as u64,
        hours,
        cluster_seed: run.cluster.seed,
        trace_seed: run.trace.seed,
        tick_seconds: run.cluster.tick.get(),
        ticks: 0,
    };
    let (result, end_servers) = vmt_dcsim::Simulation::new(
        run.cluster.clone(),
        vmt_workload::DiurnalTrace::new(run.trace.clone()),
        Box::new(recorder),
    )
    .with_threads(run.tick_threads)
    .run_returning_servers();
    let mut trace = handle.into_trace(header, &result, &end_servers);
    trace.header.ticks = trace.footer.ticks_run;

    if let Err(err) = std::fs::write(trace_path, trace.to_jsonl()) {
        eprintln!("error: cannot write `{trace_path}`: {err}");
        std::process::exit(1);
    }
    println!(
        "recorded {} on {servers} servers: {} ticks, {} decisions ({} placements, {} dropped)",
        policy_name,
        trace.footer.ticks_run,
        trace.decision_count(),
        result.placements,
        result.dropped_jobs,
    );
    println!("trace: {trace_path}");
}

/// Re-drives a simulation from a trace (`vmt-experiments replay`).
fn cmd_replay(rest: &[String]) {
    let (trace_path, rest) = positional_path(
        rest,
        "usage: vmt-experiments replay TRACE [--until TICK] [--threads T]",
    );
    let flags = parse_flags(rest, &["--until", "--threads"]);
    let text = match std::fs::read_to_string(trace_path) {
        Ok(text) => text,
        Err(err) => die(&format!("cannot read `{trace_path}`: {err}")),
    };
    let trace = match vmt_telemetry::replay::PlacementTrace::parse(&text) {
        Ok(trace) => trace,
        Err(err) => {
            eprintln!("invalid trace: {err}");
            std::process::exit(1);
        }
    };

    let recorded_ticks = trace.footer.ticks_run;
    let until: Option<u64> = numeric(&flags, "--until");
    let ticks = until.unwrap_or(recorded_ticks).min(recorded_ticks);
    if ticks == 0 {
        die("`--until` must replay at least one tick");
    }
    // `ticks_for` rounds, so hours -> ticks round-trips exactly.
    let hours = ticks as f64 * trace.header.tick_seconds / 3600.0;
    let mut cluster = vmt_dcsim::ClusterConfig::paper_default(trace.header.servers as usize);
    cluster.seed = trace.header.cluster_seed;
    let mut trace_cfg = vmt_workload::TraceConfig::paper_default();
    trace_cfg.horizon = vmt_units::Hours::new(hours);
    trace_cfg.seed = trace.header.trace_seed;

    let expected_final = trace.footer.final_digest;
    let policy_name = trace.header.policy.clone();
    let report = vmt_dcsim::ReplayHandle::new();
    let replayer = vmt_dcsim::ReplayScheduler::new(trace, report.clone());
    let mut sim = vmt_dcsim::Simulation::new(
        cluster,
        vmt_workload::DiurnalTrace::new(trace_cfg),
        Box::new(replayer),
    );
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        sim = sim.with_threads(threads);
    }
    let (result, end_servers) = sim.run_returning_servers();

    let full_replay = ticks == recorded_ticks;
    let missing = report.missing_decisions();
    let verdict = report.verdict();
    let mut failed = missing > 0;
    match verdict {
        vmt_telemetry::replay::ReplayVerdict::BitIdentical { ticks_compared } => {
            println!(
                "replay of {policy_name}: bit-identical over {ticks_compared} ticks{}",
                if full_replay { "" } else { " (prefix)" }
            );
        }
        vmt_telemetry::replay::ReplayVerdict::Diverged {
            first_tick,
            expected,
            actual,
        } => {
            println!(
                "replay of {policy_name}: DIVERGED at tick {first_tick} \
                 (expected digest {expected:#018x}, got {actual:#018x})"
            );
            println!("bisect with `--until {first_tick}` to narrow the window");
            failed = true;
        }
    }
    if missing > 0 {
        println!("{missing} arrivals had no recorded decision (workload divergence)");
    }
    if full_replay {
        let final_digest = vmt_dcsim::digest_final_state(&result, &end_servers);
        if final_digest == expected_final {
            println!("final state digest matches the recording ({final_digest:#018x})");
        } else {
            println!(
                "final state digest MISMATCH: recorded {expected_final:#018x}, \
                 replayed {final_digest:#018x}"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Checkpoints a run at a tick (`vmt-experiments snapshot`).
fn cmd_snapshot(rest: &[String]) {
    let (snap_path, rest) = positional_path(
        rest,
        "usage: vmt-experiments snapshot FILE (--at TICK | --from-flight DUMP) [options]",
    );
    let flags = parse_flags(
        rest,
        &[
            "--at",
            "--from-flight",
            "--policy",
            "--gv",
            "--servers",
            "--hours",
            "--seed",
            "--threads",
            "--zones",
        ],
    );
    let gv: f64 = numeric(&flags, "--gv").unwrap_or(22.0);
    let policy_name = flags.get("--policy").map_or("vmt-wa", String::as_str);
    let policy = match vmt_core::PolicyKind::parse(policy_name, gv) {
        Ok(policy) => policy,
        Err(err) => die(&err),
    };
    // `record`-sized defaults: the farm arrays land in the file verbatim.
    let servers: usize = numeric(&flags, "--servers").unwrap_or(100);
    let hours: f64 = numeric(&flags, "--hours").unwrap_or(24.0);
    if !hours.is_finite() || hours <= 0.0 {
        die("`--hours` must be positive");
    }

    // The checkpoint tick: given directly, or lifted from a flight-
    // recorder dump's header so the run can be frozen exactly where a
    // watchdog fired.
    let at: u64 = match (numeric::<u64>(&flags, "--at"), flags.get("--from-flight")) {
        (Some(_), Some(_)) => die("`--at` and `--from-flight` are mutually exclusive"),
        (Some(at), None) => at,
        (None, Some(dump_path)) => {
            let text = match std::fs::read_to_string(dump_path) {
                Ok(text) => text,
                Err(err) => die(&format!("cannot read `{dump_path}`: {err}")),
            };
            match vmt_telemetry::validate_dump(&text) {
                Ok(dump) => dump.header.tick,
                Err(err) => {
                    eprintln!("invalid flight dump: {err}");
                    std::process::exit(1);
                }
            }
        }
        (None, None) => die("snapshot requires `--at TICK` or `--from-flight DUMP`"),
    };

    let mut run = Run::new(servers, policy);
    run.trace.horizon = vmt_units::Hours::new(hours);
    if let Some(seed) = numeric::<u64>(&flags, "--seed") {
        run.cluster.seed = seed;
        run.trace.seed = seed;
    }
    if flags.contains_key("--zones") {
        run.cluster.topology = Some(vmt_dcsim::ZoneSpec::paper_default());
    }
    let mut sim = vmt_dcsim::Simulation::new(
        run.cluster.clone(),
        vmt_workload::DiurnalTrace::new(run.trace.clone()),
        policy.build(&run.cluster),
    );
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        sim = sim.with_threads(threads);
    }
    let total = sim.total_ticks();
    if at > total {
        die(&format!(
            "`--at {at}` is beyond the horizon ({total} ticks)"
        ));
    }
    sim.run_until(at);
    let snapshot = match sim.snapshot() {
        Ok(snapshot) => snapshot,
        Err(err) => {
            eprintln!("cannot snapshot: {err}");
            std::process::exit(1);
        }
    };
    if let Err(err) = std::fs::write(snap_path, snapshot.encode()) {
        eprintln!("error: cannot write `{snap_path}`: {err}");
        std::process::exit(1);
    }
    println!(
        "snapshot of {policy_name} on {servers} servers at tick {at}/{total}: \
         digest {:#018x}",
        snapshot.digest()
    );
    println!("snapshot: {snap_path}");
}

/// Restores a checkpoint and steps it forward (`vmt-experiments resume`).
fn cmd_resume(rest: &[String]) {
    let (snap_path, rest) = positional_path(
        rest,
        "usage: vmt-experiments resume FILE [--until TICK] [--threads T]",
    );
    let flags = parse_flags(rest, &["--until", "--threads"]);
    let text = match std::fs::read_to_string(snap_path) {
        Ok(text) => text,
        Err(err) => die(&format!("cannot read `{snap_path}`: {err}")),
    };
    let snapshot = match vmt_dcsim::Snapshot::decode(&text) {
        Ok(snapshot) => snapshot,
        Err(err) => {
            eprintln!("invalid snapshot: {err}");
            std::process::exit(1);
        }
    };
    let mut sim = match vmt_core::restore_simulation(&snapshot) {
        Ok(sim) => sim,
        Err(err) => {
            eprintln!("invalid snapshot: {err}");
            std::process::exit(1);
        }
    };
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        sim = sim.with_threads(threads);
    }
    let total = sim.total_ticks();
    let until: u64 = numeric(&flags, "--until").unwrap_or(total);
    if until < snapshot.tick {
        die(&format!(
            "`--until {until}` precedes the snapshot tick {}",
            snapshot.tick
        ));
    }
    let until = until.min(total);
    sim.run_until(until);
    println!(
        "resumed {} at tick {}, ran to tick {until}/{total}",
        snapshot.scheduler.kind, snapshot.tick
    );
    println!("state digest at tick {until}: {:#018x}", sim.state_digest());
    if until == total {
        let (result, end_servers) = sim.finish();
        println!(
            "{}: {} placements, {} dropped, peak cooling {:.1} kW",
            result.scheduler_name,
            result.placements,
            result.dropped_jobs,
            result.peak_cooling().get() / 1e3
        );
        println!(
            "final state digest: {:#018x}",
            vmt_dcsim::digest_final_state(&result, &end_servers)
        );
    }
}

/// Validates a JSONL stream (`vmt-experiments check-telemetry FILE`).
fn cmd_check_telemetry(rest: &[String]) {
    let (path, rest) = positional_path(rest, "usage: vmt-experiments check-telemetry FILE");
    if !rest.is_empty() {
        die("usage: vmt-experiments check-telemetry FILE");
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => die(&format!("cannot read `{path}`: {err}")),
    };
    match vmt_telemetry::validate_stream(&text) {
        Ok(stream) => {
            println!(
                "ok: {} events ({} snapshots, {} melt, {} hot-group, {} anomalies)",
                stream.events,
                stream.snapshots,
                stream.melts,
                stream.hot_group_events,
                stream.anomalies,
            );
            println!(
                "run: {} on {} servers, {} ticks planned, {} run at {:.0} ticks/s",
                stream.run_config.policy,
                stream.run_config.servers,
                stream.run_config.ticks,
                stream.summary.ticks_run,
                stream.summary.ticks_per_s,
            );
            if stream.summary.write_errors > 0 {
                eprintln!(
                    "stream is well-formed but the run dropped {} event writes — \
                     the file is incomplete",
                    stream.summary.write_errors
                );
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("invalid telemetry stream: {err}");
            std::process::exit(1);
        }
    }
}

/// Validates a flight-recorder dump (`vmt-experiments check-flight FILE`).
fn cmd_check_flight(rest: &[String]) {
    let (path, rest) = positional_path(rest, "usage: vmt-experiments check-flight FILE");
    if !rest.is_empty() {
        die("usage: vmt-experiments check-flight FILE");
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => die(&format!("cannot read `{path}`: {err}")),
    };
    match vmt_telemetry::validate_dump(&text) {
        Ok(dump) => {
            let trigger = dump.header.watchdog.map_or("on-demand".to_owned(), |w| {
                format!("watchdog {}", w.label())
            });
            println!(
                "ok: {} records at tick {} ({trigger}), {} ticks of context, \
                 {} recorded over the run",
                dump.records, dump.header.tick, dump.context_ticks, dump.header.records_total,
            );
        }
        Err(err) => {
            eprintln!("invalid flight dump: {err}");
            std::process::exit(1);
        }
    }
}

/// Validates an OpenMetrics exposition
/// (`vmt-experiments check-metrics FILE [--require FAMILIES]`).
///
/// FILE is a saved `/metrics` scrape, or `-` to read stdin so a live
/// scrape can be piped straight through: the strict in-repo parser
/// rejects malformed escapes, bad `# TYPE`/`# HELP` lines, kind-illegal
/// sample suffixes, and content after `# EOF`. `--require` takes a
/// comma-separated family list (e.g. `zone_temp_c,zone_crac_duty`) that
/// must all be present.
fn cmd_check_metrics(rest: &[String]) {
    const USAGE: &str = "usage: vmt-experiments check-metrics FILE [--require FAMILIES]";
    let (path, rest) = match rest.split_first() {
        // Unlike the other check-* inputs, `-` (stdin) is a valid FILE.
        Some((path, tail)) if path == "-" || !path.starts_with("--") => (path, tail),
        _ => die(USAGE),
    };
    let flags = parse_flags(rest, &["--require"]);
    let text = read_file_or_stdin(path);
    let exposition = match vmt_telemetry::parse_openmetrics(&text) {
        Ok(exposition) => exposition,
        Err(err) => {
            eprintln!("invalid metrics exposition: {err}");
            std::process::exit(1);
        }
    };
    if let Some(required) = flags.get("--require") {
        for family in required.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            if exposition.family(family).is_none() {
                eprintln!("metrics exposition is valid but missing required family `{family}`");
                std::process::exit(1);
            }
        }
    }
    let samples: usize = exposition.families.iter().map(|f| f.samples.len()).sum();
    println!(
        "ok: {} metric families, {samples} samples",
        exposition.families.len()
    );
}

/// Reads FILE, or stdin when FILE is `-` — the shared input convention
/// of `check-metrics`, `check-trace`, and `explain`, so a live scrape
/// or a freshly written trace can be piped straight through.
fn read_file_or_stdin(path: &str) -> String {
    if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        if let Err(err) = std::io::stdin().read_to_string(&mut buf) {
            die(&format!("cannot read stdin: {err}"));
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => die(&format!("cannot read `{path}`: {err}")),
        }
    }
}

/// Validates a Chrome trace-event export
/// (`vmt-experiments check-trace FILE`).
///
/// FILE is a trace written by `run --trace`, or `-` to read stdin. The
/// strict in-repo validator checks the renderer's full structural
/// contract — legal `ph` per category, finite non-negative timestamps,
/// span nesting per thread lane, unique `(tick, seq)` ids, and the
/// typed payload fields each category promises. Exits 0 when the trace
/// is valid, 1 when it is not, 2 on usage errors.
fn cmd_check_trace(rest: &[String]) {
    const USAGE: &str = "usage: vmt-experiments check-trace FILE";
    let (path, rest) = match rest.split_first() {
        Some((path, tail)) if path == "-" || !path.starts_with("--") => (path, tail),
        _ => die(USAGE),
    };
    if !rest.is_empty() {
        die(USAGE);
    }
    let text = read_file_or_stdin(path);
    match vmt_telemetry::validate_trace(&text) {
        Ok(stats) => {
            println!(
                "ok: {} events over {} ticks ({} spans: {} phase, {} zone; \
                 {} placements, {} decisions, {} anomalies)",
                stats.events,
                stats.ticks,
                stats.spans,
                stats.phases,
                stats.zones,
                stats.placements,
                stats.decisions,
                stats.anomalies,
            );
            if stats.dropped > 0 {
                println!(
                    "note: the exporter's ring dropped {} records before rendering — \
                     raise the trace capacity or the sampling stride for full coverage",
                    stats.dropped
                );
            }
        }
        Err(err) => {
            eprintln!("invalid trace: {err}");
            std::process::exit(1);
        }
    }
}

/// Reconstructs one job's placement decision from a trace
/// (`vmt-experiments explain JOB_ID TRACE`).
///
/// Walks the decision and placement instants of a trace written by
/// `run --trace` and prints the audit chain for JOB_ID: arrival tick,
/// the scheduler rung that handled it, the top-k candidate servers
/// with their tournament keys (best first), the chosen server with its
/// winning key, and the zone the job landed in. Exits 1 when the job
/// does not appear in the trace (it was not sampled — re-run with a
/// denser `--trace-sample` or pin the id with `--trace-jobs`).
fn cmd_explain(rest: &[String]) {
    const USAGE: &str = "usage: vmt-experiments explain JOB_ID TRACE";
    let (job_str, rest) = match rest.split_first() {
        Some((job, tail)) if !job.starts_with("--") => (job, tail),
        _ => die(USAGE),
    };
    let job: u64 = job_str
        .parse()
        .unwrap_or_else(|_| die(&format!("`{job_str}` is not a job id")));
    let (path, rest) = match rest.split_first() {
        Some((path, tail)) if path == "-" || !path.starts_with("--") => (path, tail),
        _ => die(USAGE),
    };
    if !rest.is_empty() {
        die(USAGE);
    }
    let text = read_file_or_stdin(path);
    let trace = match vmt_telemetry::parse_trace(&text) {
        Ok(trace) => trace,
        Err(err) => {
            eprintln!("invalid trace: {err}");
            std::process::exit(1);
        }
    };

    let for_job = |event: &vmt_telemetry::ChromeEvent| matches!(event.args.get_field("job"), Some(serde::Value::U64(id)) if *id == job);
    let decisions: Vec<&vmt_telemetry::ChromeEvent> = trace
        .trace_events
        .iter()
        .filter(|e| e.cat == "decision" && for_job(e))
        .collect();
    let placements: Vec<&vmt_telemetry::ChromeEvent> = trace
        .trace_events
        .iter()
        .filter(|e| e.cat == "placement" && for_job(e))
        .collect();
    if decisions.is_empty() && placements.is_empty() {
        eprintln!(
            "job {job} is not in this trace — it was not sampled; re-run with \
             `--trace-sample 1` or `--trace-jobs {job}`"
        );
        std::process::exit(1);
    }

    let field_u64 = |event: &vmt_telemetry::ChromeEvent, name: &str| -> Option<u64> {
        match event.args.get_field(name) {
            Some(serde::Value::U64(n)) => Some(*n),
            Some(serde::Value::I64(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    };
    let field_f64 = |event: &vmt_telemetry::ChromeEvent, name: &str| -> Option<f64> {
        match event.args.get_field(name) {
            Some(serde::Value::F64(x)) => Some(*x),
            Some(serde::Value::U64(n)) => Some(*n as f64),
            Some(serde::Value::I64(n)) => Some(*n as f64),
            _ => None,
        }
    };
    let field_str = |event: &vmt_telemetry::ChromeEvent, name: &str| -> Option<String> {
        match event.args.get_field(name) {
            Some(serde::Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    };

    println!("job {job}");
    // The decision instant carries the scheduler's view: the rung of
    // the placement ladder that handled the job and the balancer's
    // candidate snapshot taken just before the job was placed.
    for decision in &decisions {
        let tick = field_u64(decision, "tick").unwrap_or(0);
        let rung = field_str(decision, "rung").unwrap_or_default();
        let chosen = field_u64(decision, "chosen");
        println!("  arrived at tick {tick}, handled by rung `{rung}`");
        if let Some(serde::Value::Array(candidates)) = decision.args.get_field("candidates") {
            if candidates.is_empty() {
                println!("  no balancer candidates (priority or cursor rung)");
            } else {
                println!("  top balancer candidates (best key first):");
                for candidate in candidates {
                    let server = candidate
                        .get_field("server")
                        .and_then(|v| match v {
                            serde::Value::U64(n) => Some(*n),
                            _ => None,
                        })
                        .unwrap_or(0);
                    let key = candidate
                        .get_field("key")
                        .and_then(|v| match v {
                            serde::Value::F64(x) => Some(*x),
                            _ => None,
                        })
                        .unwrap_or(f64::NAN);
                    let marker = if chosen == Some(server) {
                        "  <- chosen"
                    } else {
                        ""
                    };
                    println!("    server {server:>6}  key {key:.4}{marker}");
                }
            }
        }
        match (chosen, field_f64(decision, "winning_key")) {
            (Some(server), Some(key)) => {
                println!("  chose server {server} with winning key {key:.4}");
            }
            (Some(server), None) => {
                println!("  chose server {server} (no tournament key — priority/cursor rung)");
            }
            (None, _) => println!("  dropped: the rung ladder found no capacity"),
        }
    }
    if decisions.is_empty() {
        println!("  (no decision detail — recorded without a tracing-aware policy)");
    }
    // The placement instant carries the engine's view: what was
    // actually committed to the farm, including the zone.
    for placement in &placements {
        let tick = field_u64(placement, "tick").unwrap_or(0);
        let kind = field_u64(placement, "kind")
            .filter(|&k| k < 5)
            .map(|k| vmt_workload::WorkloadKind::from_index(k as usize).name())
            .unwrap_or("unknown");
        let duration = field_u64(placement, "duration_ticks").unwrap_or(0);
        match (field_u64(placement, "server"), field_u64(placement, "zone")) {
            (Some(server), Some(zone)) => println!(
                "  placed on server {server} in zone {zone} at tick {tick} \
                 ({kind}, {duration} ticks)"
            ),
            (Some(server), None) => println!(
                "  placed on server {server} at tick {tick} ({kind}, {duration} ticks; \
                 run had no zone topology)"
            ),
            (None, _) => {
                println!("  not placed at tick {tick} ({kind}, {duration} ticks) — dropped")
            }
        }
    }
    if placements.is_empty() {
        println!("  (no placement instant — the job never reached the farm)");
    }
}

/// Mirror of the benchmark report schema written by
/// `cargo bench -p vmt-bench --bench engine_baseline` — only the fields
/// the checks consume; a missing field fails deserialization, which is
/// the schema validation.
#[derive(serde::Deserialize)]
struct BenchReport {
    description: String,
    scenario: String,
    measurements: Vec<BenchMeasurement>,
    speedups: Vec<BenchSpeedup>,
    scaling: Vec<BenchScaling>,
    phases: Vec<BenchPhase>,
}

#[derive(serde::Deserialize)]
struct BenchMeasurement {
    scheduler: String,
    implementation: String,
    servers: usize,
    ticks: usize,
    elapsed_s: f64,
    ticks_per_sec: f64,
    placements: u64,
}

#[derive(serde::Deserialize)]
struct BenchSpeedup {
    scheduler: String,
    servers: usize,
    speedup: f64,
}

#[derive(serde::Deserialize)]
struct BenchScaling {
    scheduler: String,
    servers: usize,
    threads: usize,
    ticks: usize,
    elapsed_s: f64,
    ticks_per_sec: f64,
    placements: u64,
    /// Job-table heap bytes per server at the end of the run. Recorded
    /// by the pooled-table bench; required on the 1M rows (where the
    /// memory budget is the point) and gated at
    /// [`MAX_MILLION_BYTES_PER_SERVER`].
    #[serde(default)]
    bytes_per_server: Option<f64>,
}

#[derive(serde::Deserialize)]
struct BenchPhase {
    scheduler: String,
    servers: usize,
    ticks_per_sec_instrumented: f64,
    coverage: f64,
    /// Set on the zoned observability row: throughput with the full
    /// observability layer (series + zone gauges + publisher) enabled.
    ticks_per_sec_observed: Option<f64>,
    /// Relative per-tick cost the observability layer adds over the
    /// spans-only run; gated at [`MAX_OBSERVABILITY_OVERHEAD`].
    observability_overhead: Option<f64>,
    /// Set on the zoned tracing row: throughput with span tracing
    /// enabled (phase + zone spans, placement decisions at sample 200 —
    /// the densest stride whose full 48h trace fits the default ring).
    ticks_per_sec_traced: Option<f64>,
    /// Relative per-tick cost enabled tracing adds over the plain
    /// instrumented run; gated at [`MAX_TRACING_OVERHEAD`].
    tracing_overhead: Option<f64>,
}

/// Ceiling on the relative per-tick cost of the observability layer at
/// the zoned 10k scale: series rings, per-zone gauges, and the scrape
/// publisher together may add at most 5% over the spans-only run.
const MAX_OBSERVABILITY_OVERHEAD: f64 = 0.05;

/// Ceiling on the relative per-tick cost of enabled span tracing at
/// the zoned 10k scale (sample 200): ring pushes, candidate snapshots,
/// and the per-zone `Instant` reads together may add at most 5%.
const MAX_TRACING_OVERHEAD: f64 = 0.05;

/// Server count of the top scaling tier the artifact must include.
const MILLION_TIER_SERVERS: usize = 1_000_000;

/// Ceiling on the 1M tier's per-server per-tick cost relative to the
/// same-thread 100k row — the same flat-scaling contract as the
/// 100k-vs-10k check, one decade up.
const MAX_MILLION_COST_FACTOR: f64 = 3.0;

/// Memory budget for the pooled job table at the 1M tier. The dominant
/// term is pages: at the diurnal peak (~70% of 32 cores busy) a server
/// chains ⌈22/8⌉ = 3 pages of 44 B each plus 12 B of per-server
/// anchors, ~150 B/server; 512 leaves headroom for free-list slack and
/// page-granularity waste without masking a return to the per-slot
/// slab (which sat at 288 B/server of `u64` ids alone and would blow
/// straight through this with its `kinds`/capacity overhead).
const MAX_MILLION_BYTES_PER_SERVER: f64 = 512.0;

/// Validates an engine benchmark artifact
/// (`vmt-experiments check-bench FILE`, normally `BENCH_engine.json`).
///
/// Beyond schema shape, this asserts the two properties the benchmark
/// exists to prove: determinism (placements identical across thread
/// counts at the same scale) and that parallelism pays — `threads=N`
/// must hold at least 0.9x the single-thread throughput, so a scaling
/// inversion like the pre-pool per-tick `thread::scope` spawn storm
/// fails the check instead of landing silently in the artifact. It also
/// requires the headline 10k and 100k vmt-wa groups at threads
/// {1,2,4,8} and the 1M tier at threads {1,8} (missing rows are all
/// listed in one error, with the exact regeneration command), holds the
/// 100k rows' per-server tick cost to the 10k anchor and the 1M rows'
/// to the 100k anchor, gates the 1M rows' job-table bytes-per-server
/// under budget, and gates the zoned 10k observability row: the
/// series/gauges/publisher layer may add at most 5% per-tick cost over
/// the spans-only instrumented run.
fn cmd_check_bench(rest: &[String]) {
    let (path, rest) = positional_path(rest, "usage: vmt-experiments check-bench FILE");
    if !rest.is_empty() {
        die("usage: vmt-experiments check-bench FILE");
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => die(&format!("cannot read `{path}`: {err}")),
    };
    let report: BenchReport = match serde_json::from_str(&text) {
        Ok(report) => report,
        Err(err) => fail_bench(&format!("schema mismatch: {err}")),
    };
    if report.description.is_empty() || report.scenario.is_empty() {
        fail_bench("empty description/scenario");
    }
    for section in [
        ("measurements", report.measurements.is_empty()),
        ("speedups", report.speedups.is_empty()),
        ("scaling", report.scaling.is_empty()),
        ("phases", report.phases.is_empty()),
    ] {
        if section.1 {
            fail_bench(&format!("`{}` section is empty", section.0));
        }
    }
    for m in &report.measurements {
        if !positive(m.ticks_per_sec) || !positive(m.elapsed_s) || m.ticks == 0 {
            fail_bench(&format!(
                "measurement {}@{} ({}) has non-positive timing",
                m.scheduler, m.servers, m.implementation
            ));
        }
        let _ = m.placements;
    }
    for s in &report.speedups {
        if !positive(s.speedup) {
            fail_bench(&format!(
                "speedup {}@{} is non-positive",
                s.scheduler, s.servers
            ));
        }
    }
    for p in &report.phases {
        if !positive(p.ticks_per_sec_instrumented) || !(0.0..=1.05).contains(&p.coverage) {
            fail_bench(&format!(
                "phase profile {}@{} out of range",
                p.scheduler, p.servers
            ));
        }
        if let Some(observed) = p.ticks_per_sec_observed {
            if !positive(observed) {
                fail_bench(&format!(
                    "observability row {}@{} has non-positive observed throughput",
                    p.scheduler, p.servers
                ));
            }
            let Some(overhead) = p.observability_overhead else {
                fail_bench(&format!(
                    "observability row {}@{} records observed throughput but no overhead",
                    p.scheduler, p.servers
                ));
            };
            // NaN never satisfies `contains`, so it fails the gate too.
            if !(-1.0..=MAX_OBSERVABILITY_OVERHEAD).contains(&overhead) {
                fail_bench(&format!(
                    "observability row {}@{}: series + zone gauges + publisher add \
                     {:.1}% per-tick cost (ceiling {:.0}%)",
                    p.scheduler,
                    p.servers,
                    overhead * 100.0,
                    MAX_OBSERVABILITY_OVERHEAD * 100.0
                ));
            }
        }
        if let Some(traced) = p.ticks_per_sec_traced {
            if !positive(traced) {
                fail_bench(&format!(
                    "tracing row {}@{} has non-positive traced throughput",
                    p.scheduler, p.servers
                ));
            }
            let Some(overhead) = p.tracing_overhead else {
                fail_bench(&format!(
                    "tracing row {}@{} records traced throughput but no overhead",
                    p.scheduler, p.servers
                ));
            };
            if !(-1.0..=MAX_TRACING_OVERHEAD).contains(&overhead) {
                fail_bench(&format!(
                    "tracing row {}@{}: enabled span tracing adds {:.1}% per-tick \
                     cost (ceiling {:.0}%)",
                    p.scheduler,
                    p.servers,
                    overhead * 100.0,
                    MAX_TRACING_OVERHEAD * 100.0
                ));
            }
        }
    }
    // The observability-overhead and tracing-overhead rows must
    // actually be present — a bench run that silently skipped them
    // would otherwise still validate.
    if !report
        .phases
        .iter()
        .any(|p| p.servers == 10_000 && p.observability_overhead.is_some())
    {
        fail_bench("`phases` has no 10k observability-overhead row");
    }
    if !report
        .phases
        .iter()
        .any(|p| p.servers == 10_000 && p.tracing_overhead.is_some())
    {
        fail_bench("`phases` has no 10k tracing-overhead row");
    }

    // The scaling table: anchor each (scheduler, servers) group on its
    // threads=1 row and hold every other row to it.
    let mut groups: Vec<(&str, usize)> = Vec::new();
    for row in &report.scaling {
        let key = (row.scheduler.as_str(), row.servers);
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    let mut checked = 0usize;
    let mut worst_ratio = f64::INFINITY;
    for &(scheduler, servers) in &groups {
        let group: Vec<&BenchScaling> = report
            .scaling
            .iter()
            .filter(|row| row.scheduler == scheduler && row.servers == servers)
            .collect();
        let Some(base) = group.iter().find(|row| row.threads == 1) else {
            fail_bench(&format!(
                "scaling group {scheduler}@{servers} has no threads=1 baseline row"
            ));
        };
        for row in &group {
            if row.placements != base.placements {
                fail_bench(&format!(
                    "scaling {scheduler}@{servers} x{}: placements diverge from the \
                     threads=1 row — the parallel tick is not deterministic",
                    row.threads
                ));
            }
            let ratio = row.ticks_per_sec / base.ticks_per_sec;
            if row.threads > 1 {
                worst_ratio = worst_ratio.min(ratio);
                checked += 1;
            }
            if ratio < 0.9 {
                fail_bench(&format!(
                    "scaling inversion: {scheduler}@{servers} x{} runs at {ratio:.2}x \
                     the single-thread throughput (floor 0.9x)",
                    row.threads
                ));
            }
        }
    }
    // The headline scaling groups must actually be present: 10k and
    // 100k vmt-wa rows at every recorded thread count, plus the 1M-tier
    // rows at the bracketing thread counts. Without this a bench run
    // that silently skipped the expensive sweeps would still validate.
    // Missing rows are reported all at once — regenerating the artifact
    // takes tens of minutes, so one run must surface every gap.
    let required: &[(usize, &[usize])] = &[
        (10_000, &[1, 2, 4, 8]),
        (100_000, &[1, 2, 4, 8]),
        (MILLION_TIER_SERVERS, &[1, 8]),
    ];
    let mut missing = Vec::new();
    for &(servers, thread_counts) in required {
        for &threads in thread_counts {
            if !report.scaling.iter().any(|row| {
                row.scheduler == "vmt-wa" && row.servers == servers && row.threads == threads
            }) {
                missing.push((servers, threads));
            }
        }
    }
    if !missing.is_empty() {
        let rows = missing
            .iter()
            .map(|&(servers, threads)| format!("vmt-wa@{servers} x{threads}"))
            .collect::<Vec<_>>()
            .join(", ");
        // The 1M rows have their own cheap patch mode; everything else
        // needs the full sweep (which also measures the 1M tier).
        let command = if missing.iter().all(|&(s, _)| s == MILLION_TIER_SERVERS) {
            "cargo bench -p vmt-bench --bench engine_baseline -- --million"
        } else {
            "cargo bench -p vmt-bench --bench engine_baseline"
        };
        fail_bench(&format!(
            "scaling table is missing {} row(s): {rows}\n  regenerate with: {command}",
            missing.len()
        ));
    }
    // Headline-scale cost ceiling. Absolute wall-clock depends entirely
    // on the recording host (the same code measures 2x apart across
    // runs on shared hardware), so the regression line is relative
    // *within* the artifact: each 100k row's per-server per-tick cost
    // is held to the same-thread 10k row's. Cache pressure makes ~2x
    // the expected ratio at the 10x size jump; blowing past 3x means
    // the tick has genuinely stopped scaling flat (per-server cost is
    // growing with farm size), which is the regression the old
    // absolute 360 s ceiling was trying to catch. An absolute ceiling
    // can still be opted into with VMT_CHECK_BENCH_MAX_100K_S=<seconds>
    // when runs come from one known host.
    const MAX_100K_COST_FACTOR: f64 = 3.0;
    let per_server_tick_cost =
        |row: &BenchScaling| row.elapsed_s / row.ticks as f64 / row.servers as f64;
    for row in &report.scaling {
        if row.scheduler != "vmt-wa" || row.servers != 100_000 {
            continue;
        }
        // The same-thread 10k row is the anchor (presence at threads
        // {1,2,4,8} was enforced above; other thread counts must bring
        // their own anchor).
        let Some(anchor) = report
            .scaling
            .iter()
            .find(|r| r.scheduler == "vmt-wa" && r.servers == 10_000 && r.threads == row.threads)
        else {
            fail_bench(&format!(
                "vmt-wa@100000 x{} has no same-thread 10k anchor row for the cost check",
                row.threads
            ));
        };
        let factor = per_server_tick_cost(row) / per_server_tick_cost(anchor);
        if !positive(factor) || factor > MAX_100K_COST_FACTOR {
            fail_bench(&format!(
                "vmt-wa@100000 x{}: per-server tick cost is {factor:.2}x the 10k row's \
                 (ceiling {MAX_100K_COST_FACTOR:.1}x) — the tick no longer scales flat",
                row.threads
            ));
        }
    }
    // The 1M tier gets the same relative treatment, anchored on the
    // same-thread 100k row: per-server per-tick cost may grow by at
    // most the cache-pressure factor across the 10x size jump, and each
    // row must carry the pooled job table's bytes-per-server under the
    // memory budget (the compressed table is the reason the tier fits
    // in RAM at all — a row without the record, or over budget, means
    // the pooling regressed).
    for row in &report.scaling {
        if row.scheduler != "vmt-wa" || row.servers != MILLION_TIER_SERVERS {
            continue;
        }
        let Some(anchor) = report
            .scaling
            .iter()
            .find(|r| r.scheduler == "vmt-wa" && r.servers == 100_000 && r.threads == row.threads)
        else {
            fail_bench(&format!(
                "vmt-wa@{MILLION_TIER_SERVERS} x{} has no same-thread 100k anchor row for \
                 the cost check",
                row.threads
            ));
        };
        let factor = per_server_tick_cost(row) / per_server_tick_cost(anchor);
        if !positive(factor) || factor > MAX_MILLION_COST_FACTOR {
            fail_bench(&format!(
                "vmt-wa@{MILLION_TIER_SERVERS} x{}: per-server tick cost is {factor:.2}x \
                 the 100k row's (ceiling {MAX_MILLION_COST_FACTOR:.1}x) — the tick no \
                 longer scales flat",
                row.threads
            ));
        }
        let Some(bytes) = row.bytes_per_server else {
            fail_bench(&format!(
                "vmt-wa@{MILLION_TIER_SERVERS} x{} records no bytes_per_server — \
                 the 1M tier exists to prove the job-table memory budget",
                row.threads
            ));
        };
        if !positive(bytes) || bytes > MAX_MILLION_BYTES_PER_SERVER {
            fail_bench(&format!(
                "vmt-wa@{MILLION_TIER_SERVERS} x{}: job table holds {bytes:.1} B/server \
                 (budget {MAX_MILLION_BYTES_PER_SERVER:.0} B/server)",
                row.threads
            ));
        }
    }
    if let Ok(v) = std::env::var("VMT_CHECK_BENCH_MAX_100K_S") {
        let ceiling = match v.parse::<f64>() {
            Ok(s) if s > 0.0 => s,
            _ => fail_bench(&format!(
                "VMT_CHECK_BENCH_MAX_100K_S must be a positive number of seconds, got {v:?}"
            )),
        };
        for row in &report.scaling {
            if row.scheduler == "vmt-wa" && row.servers == 100_000 && row.elapsed_s > ceiling {
                fail_bench(&format!(
                    "vmt-wa@100000 x{} took {:.1}s (VMT_CHECK_BENCH_MAX_100K_S={ceiling:.0})",
                    row.threads, row.elapsed_s
                ));
            }
        }
    }
    println!(
        "ok: {} measurement rows, {} scaling rows in {} groups",
        report.measurements.len(),
        report.scaling.len(),
        groups.len(),
    );
    if checked > 0 {
        println!(
            "scaling holds: worst multi-thread row at {worst_ratio:.2}x single-thread \
             (floor 0.90x), placements identical across thread counts"
        );
    }
}

/// Reports an invalid benchmark artifact and exits 1.
/// NaN-safe strict positivity (NaN compares false, so it fails too).
fn positive(x: f64) -> bool {
    x > 0.0
}

fn fail_bench(message: &str) -> ! {
    eprintln!("invalid benchmark artifact: {message}");
    std::process::exit(1);
}

/// When `VMT_CSV_DIR` is set, drops each run's time series there as
/// `<figure>_<policy>.csv` for external plotting.
fn write_series_csv(figure: &vmt_experiments::cooling_load::CoolingLoadFigure, name: &str) {
    let Ok(dir) = std::env::var("VMT_CSV_DIR") else {
        return;
    };
    for result in &figure.results {
        let path = std::path::Path::new(&dir).join(format!(
            "{name}_{}.csv",
            result.scheduler_name.replace(' ', "_")
        ));
        if let Err(err) = std::fs::write(&path, result.series_csv()) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}

fn run_one(id: &str, servers: Option<usize>, seeds: usize) {
    // Paper sizes: 1,000 servers for the headline cluster experiments,
    // 100 for the parameter sweeps.
    let large = servers.unwrap_or(1000);
    let sweep = servers.unwrap_or(100);
    match id {
        "table1" => print!("{}", table1::render()),
        "table2" => print!("{}", table2::render(sweep)),
        "fig1" => print!("{}", fig1::render()),
        "fig2" => print!("{}", fig2::render()),
        "fig6" => print!("{}", fig6::render()),
        "fig7" => print!("{}", fig7::render(sweep)),
        "fig8" => print!("{}", fig8::render()),
        "fig9" => print!("{}", heatmaps::render(HeatmapFigure::Fig9RoundRobin, sweep)),
        "fig10" => print!(
            "{}",
            heatmaps::render(HeatmapFigure::Fig10CoolestFirst, sweep)
        ),
        "fig11" => print!("{}", heatmaps::render(HeatmapFigure::Fig11VmtTa, sweep)),
        "fig12" => print!("{}", hot_group::render(&hot_group::fig12(large))),
        "fig13" => {
            let figure = cooling_load::fig13(large);
            write_series_csv(&figure, "fig13");
            print!("{}", cooling_load::render(&figure));
        }
        "fig14" => print!("{}", heatmaps::render(HeatmapFigure::Fig14VmtWa, sweep)),
        "fig15" => print!("{}", hot_group::render(&hot_group::fig15(large))),
        "fig16" => {
            let figure = cooling_load::fig16(large);
            write_series_csv(&figure, "fig16");
            print!("{}", cooling_load::render(&figure));
        }
        "fig17" => print!("{}", threshold::render(sweep)),
        "fig18" => print!("{}", gv_sweep::render(sweep)),
        "fig19" => print!(
            "{}",
            inlet_variation::render(&inlet_variation::fig19(sweep, seeds))
        ),
        "fig20" => print!(
            "{}",
            inlet_variation::render(&inlet_variation::fig20(sweep, seeds))
        ),
        "ablations" => print!("{}", ablations::render(sweep)),
        "emergency" => print!("{}", emergency::render(sweep)),
        "bound" => print!("{}", storage_bound::render(sweep)),
        "qos" => print!("{}", qos_check::render(sweep)),
        "preserve" => print!("{}", preserve::render(sweep)),
        "estimator" => print!("{}", estimator_validation::render()),
        "tco" => {
            let (reduction, summary) = tco_summary::measured(large);
            println!("measured best peak reduction: {:.1}%", reduction * 100.0);
            print!("{}", tco_summary::render(&summary));
        }
        other => die(&format!("unknown experiment id `{other}`")),
    }
}
