//! `vmt-experiments` — regenerate any table or figure of the VMT paper.
//!
//! ```text
//! vmt-experiments <id> [--servers N] [--seeds K] [--threads T]
//! vmt-experiments all [--servers N]
//! ```
//!
//! IDs: `table1 table2 fig1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 tco`.
//!
//! `--servers` overrides the cluster size (paper defaults: 1,000 for
//! fig12/13/15/16 and tco, 100 for everything simulation-backed).
//!
//! `--threads` sets the worker count of the sharded physics tick
//! (equivalent to exporting `VMT_THREADS`). Results are bit-identical
//! at any value; only wall-clock time changes. The sweep runner keeps
//! sweep-workers x tick-threads within the machine's parallelism.

use vmt_experiments::heatmaps::HeatmapFigure;
use vmt_experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(id) = args.first() else {
        eprintln!("usage: vmt-experiments <id|all> [--servers N] [--seeds K] [--threads T]");
        eprintln!("ids: table1 table2 fig1 fig2 fig6 fig7 fig8 fig9 fig10 fig11");
        eprintln!("     fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 tco");
        eprintln!("     ablations emergency bound qos preserve estimator");
        std::process::exit(2);
    };
    let servers = flag(&args, "--servers");
    let seeds = flag(&args, "--seeds").unwrap_or(5);
    if let Some(threads) = flag(&args, "--threads") {
        // The experiment modules build their own `Run`s, whose default
        // tick-thread count reads VMT_THREADS — so one env write plumbs
        // the flag through every figure and sweep.
        std::env::set_var("VMT_THREADS", threads.max(1).to_string());
    }

    if id == "all" {
        for id in [
            "table1",
            "table2",
            "fig1",
            "fig2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "tco",
            "ablations",
            "emergency",
            "bound",
            "qos",
            "preserve",
            "estimator",
        ] {
            println!("==================== {id} ====================");
            run_one(id, servers, seeds);
        }
        return;
    }
    run_one(id, servers, seeds);
}

/// When `VMT_CSV_DIR` is set, drops each run's time series there as
/// `<figure>_<policy>.csv` for external plotting.
fn write_series_csv(figure: &vmt_experiments::cooling_load::CoolingLoadFigure, name: &str) {
    let Ok(dir) = std::env::var("VMT_CSV_DIR") else {
        return;
    };
    for result in &figure.results {
        let path = std::path::Path::new(&dir).join(format!(
            "{name}_{}.csv",
            result.scheduler_name.replace(' ', "_")
        ));
        if let Err(err) = std::fs::write(&path, result.series_csv()) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("flag takes an integer"))
}

fn run_one(id: &str, servers: Option<usize>, seeds: usize) {
    // Paper sizes: 1,000 servers for the headline cluster experiments,
    // 100 for the parameter sweeps.
    let large = servers.unwrap_or(1000);
    let sweep = servers.unwrap_or(100);
    match id {
        "table1" => print!("{}", table1::render()),
        "table2" => print!("{}", table2::render(sweep)),
        "fig1" => print!("{}", fig1::render()),
        "fig2" => print!("{}", fig2::render()),
        "fig6" => print!("{}", fig6::render()),
        "fig7" => print!("{}", fig7::render(sweep)),
        "fig8" => print!("{}", fig8::render()),
        "fig9" => print!("{}", heatmaps::render(HeatmapFigure::Fig9RoundRobin, sweep)),
        "fig10" => print!(
            "{}",
            heatmaps::render(HeatmapFigure::Fig10CoolestFirst, sweep)
        ),
        "fig11" => print!("{}", heatmaps::render(HeatmapFigure::Fig11VmtTa, sweep)),
        "fig12" => print!("{}", hot_group::render(&hot_group::fig12(large))),
        "fig13" => {
            let figure = cooling_load::fig13(large);
            write_series_csv(&figure, "fig13");
            print!("{}", cooling_load::render(&figure));
        }
        "fig14" => print!("{}", heatmaps::render(HeatmapFigure::Fig14VmtWa, sweep)),
        "fig15" => print!("{}", hot_group::render(&hot_group::fig15(large))),
        "fig16" => {
            let figure = cooling_load::fig16(large);
            write_series_csv(&figure, "fig16");
            print!("{}", cooling_load::render(&figure));
        }
        "fig17" => print!("{}", threshold::render(sweep)),
        "fig18" => print!("{}", gv_sweep::render(sweep)),
        "fig19" => print!(
            "{}",
            inlet_variation::render(&inlet_variation::fig19(sweep, seeds))
        ),
        "fig20" => print!(
            "{}",
            inlet_variation::render(&inlet_variation::fig20(sweep, seeds))
        ),
        "ablations" => print!("{}", ablations::render(sweep)),
        "emergency" => print!("{}", emergency::render(sweep)),
        "bound" => print!("{}", storage_bound::render(sweep)),
        "qos" => print!("{}", qos_check::render(sweep)),
        "preserve" => print!("{}", preserve::render(sweep)),
        "estimator" => print!("{}", estimator_validation::render()),
        "tco" => {
            let (reduction, summary) = tco_summary::measured(large);
            println!("measured best peak reduction: {:.1}%", reduction * 100.0);
            print!("{}", tco_summary::render(&summary));
        }
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    }
}
