//! Figures 9, 10, 11, 14 — per-server air-temperature and wax-melt
//! heatmaps.
//!
//! The paper plots 100-server heatmaps for round robin (Fig 9, no melt),
//! coolest first (Fig 10, tight distribution, no melt), VMT-TA at GV=22
//! (Fig 11, hot group melts) and VMT-WA at GV=20 (Fig 14, hot group
//! extension). This module runs the corresponding simulation and reduces
//! the heatmaps to the statistics those figures exist to show.

use crate::runner::Run;
use vmt_core::PolicyKind;
use vmt_dcsim::{Heatmap, SimulationResult};

/// Which figure to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatmapFigure {
    /// Figure 9: round robin.
    Fig9RoundRobin,
    /// Figure 10: coolest first.
    Fig10CoolestFirst,
    /// Figure 11: VMT-TA, GV=22.
    Fig11VmtTa,
    /// Figure 14: VMT-WA, GV=20.
    Fig14VmtWa,
}

impl HeatmapFigure {
    /// The policy behind the figure.
    pub fn policy(self) -> PolicyKind {
        match self {
            HeatmapFigure::Fig9RoundRobin => PolicyKind::RoundRobin,
            HeatmapFigure::Fig10CoolestFirst => PolicyKind::CoolestFirst,
            HeatmapFigure::Fig11VmtTa => PolicyKind::VmtTa { gv: 22.0 },
            HeatmapFigure::Fig14VmtWa => PolicyKind::vmt_wa(20.0),
        }
    }

    /// Paper figure label.
    pub fn label(self) -> &'static str {
        match self {
            HeatmapFigure::Fig9RoundRobin => "Figure 9 (round robin)",
            HeatmapFigure::Fig10CoolestFirst => "Figure 10 (coolest first)",
            HeatmapFigure::Fig11VmtTa => "Figure 11 (VMT-TA, GV=22)",
            HeatmapFigure::Fig14VmtWa => "Figure 14 (VMT-WA, GV=20)",
        }
    }
}

/// The heatmap run plus derived statistics.
#[derive(Debug, Clone)]
pub struct HeatmapResult {
    /// Which figure this is.
    pub figure: HeatmapFigure,
    /// The full simulation output (contains both heatmaps).
    pub result: SimulationResult,
}

impl HeatmapResult {
    /// The temperature heatmap.
    pub fn temps(&self) -> &Heatmap {
        &self.result.temp_heatmap
    }

    /// The melt heatmap.
    pub fn melt(&self) -> &Heatmap {
        &self.result.melt_heatmap
    }

    /// Largest across-server temperature spread (max − min) at any
    /// sampled tick — Figure 10's point is that coolest-first keeps this
    /// small.
    pub fn max_temperature_spread(&self) -> f64 {
        self.temps()
            .rows
            .iter()
            .map(|row| {
                let max = row.iter().copied().fold(f64::MIN, f64::max);
                let min = row.iter().copied().fold(f64::MAX, f64::min);
                max - min
            })
            .fold(0.0, f64::max)
    }

    /// Fraction of the cluster's total wax that melted at the point of
    /// maximum storage.
    pub fn peak_melted_fraction(&self) -> f64 {
        self.melt()
            .rows
            .iter()
            .map(|row| row.iter().sum::<f64>() / row.len() as f64)
            .fold(0.0, f64::max)
    }
}

/// Runs one heatmap figure on a cluster of `servers` servers.
pub fn heatmap(figure: HeatmapFigure, servers: usize) -> HeatmapResult {
    let result = Run::new(servers, figure.policy()).execute();
    HeatmapResult { figure, result }
}

/// Renders an ASCII version of both heatmaps plus the headline
/// statistics.
pub fn render(figure: HeatmapFigure, servers: usize) -> String {
    let h = heatmap(figure, servers);
    let mut out = format!(
        "{} — {} servers\n\
         max across-server temperature spread: {:.1} K\n\
         peak melted fraction of cluster wax: {:.1}%\n\n",
        figure.label(),
        servers,
        h.max_temperature_spread(),
        h.peak_melted_fraction() * 100.0
    );
    out.push_str("Air temperature at the wax (rows = hours, cols = servers; '.'<30, ':'30-33, '+'33-35.7, '#'>35.7 °C)\n");
    out.push_str(&ascii_map(h.temps(), &[30.0, 33.0, 35.7]));
    out.push_str("\nWax melted ('.'<5%, ':'5-50%, '+'50-95%, '#'>95%)\n");
    out.push_str(&ascii_map(h.melt(), &[0.05, 0.5, 0.95]));
    out
}

/// Down-samples a heatmap to an ASCII picture with three thresholds.
fn ascii_map(map: &Heatmap, thresholds: &[f64; 3]) -> String {
    let row_stride = (map.rows.len() / 24).max(1);
    let mut out = String::new();
    for row in map.rows.iter().step_by(row_stride) {
        let col_stride = (row.len() / 50).max(1);
        for v in row.iter().step_by(col_stride) {
            out.push(match v {
                v if *v >= thresholds[2] => '#',
                v if *v >= thresholds[1] => '+',
                v if *v >= thresholds[0] => ':',
                _ => '.',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SERVERS: usize = 30;

    #[test]
    fn round_robin_melts_nothing() {
        let h = heatmap(HeatmapFigure::Fig9RoundRobin, TEST_SERVERS);
        assert!(
            h.peak_melted_fraction() < 0.1,
            "{}",
            h.peak_melted_fraction()
        );
    }

    #[test]
    fn coolest_first_has_tighter_spread_than_round_robin() {
        let rr = heatmap(HeatmapFigure::Fig9RoundRobin, TEST_SERVERS);
        let cf = heatmap(HeatmapFigure::Fig10CoolestFirst, TEST_SERVERS);
        assert!(
            cf.max_temperature_spread() < rr.max_temperature_spread(),
            "cf {} vs rr {}",
            cf.max_temperature_spread(),
            rr.max_temperature_spread()
        );
        assert!(cf.peak_melted_fraction() < 0.1);
    }

    #[test]
    fn vmt_ta_melts_only_the_hot_group() {
        let h = heatmap(HeatmapFigure::Fig11VmtTa, TEST_SERVERS);
        assert!(
            h.peak_melted_fraction() > 0.3,
            "{}",
            h.peak_melted_fraction()
        );
        // The melt is concentrated in the hot group (low server ids):
        // find the most-melted sampled row and compare halves.
        let hot = h.result.hot_group_sizes[0];
        let row = h
            .melt()
            .rows
            .iter()
            .max_by(|a, b| {
                let sa: f64 = a.iter().sum();
                let sb: f64 = b.iter().sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        let hot_mean: f64 = row[..hot].iter().sum::<f64>() / hot as f64;
        let cold_mean: f64 = row[hot..].iter().sum::<f64>() / (row.len() - hot) as f64;
        assert!(hot_mean > 0.9, "hot group melt {hot_mean}");
        assert!(cold_mean < 0.1, "cold group melt {cold_mean}");
    }

    #[test]
    fn vmt_wa_extends_the_hot_group() {
        let h = heatmap(HeatmapFigure::Fig14VmtWa, TEST_SERVERS);
        let base = h.result.hot_group_sizes[0];
        let max = h.result.hot_group_sizes.iter().copied().max().unwrap();
        assert!(max > base, "hot group never grew past {base}");
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let s = render(HeatmapFigure::Fig9RoundRobin, 10);
        assert!(s.contains("Figure 9"));
        assert!(s.lines().count() > 20);
    }
}
