//! Table II — the empirically derived GV → virtual melting temperature
//! mapping.
//!
//! The paper derives, for its test datacenter, which *physical* melting
//! temperature a passive (round-robin) deployment would need in order to
//! behave like VMT at a given Grouping Value. We operationalize the
//! equivalence on the evaluation's own metric:
//!
//! 1. For each candidate virtual melting temperature `PMT + Δ`
//!    (Δ from +2 to −7 °C, the paper's rows), run a *reference* cluster:
//!    round-robin placement with a hypothetical wax melting at `PMT + Δ`
//!    (physically this would require n-paraffin — that is the point),
//!    and record its peak cooling-load reduction.
//! 2. Sweep VMT-TA over a GV grid with the *real* 35.7 °C wax and record
//!    each GV's reduction.
//! 3. Map each Δ to the GV whose reduction best matches the reference,
//!    constrained to be monotone (the paper's mapping is monotone:
//!    lower virtual melting temperatures require larger GVs).
//!
//! The exact GV values differ from the paper's Table II (they depend on
//! simulator internals the paper does not publish), but the structure
//! reproduces: the mapping is non-linear, flat near Δ=0 and increasingly
//! steep toward low virtual melting temperatures, with virtual
//! temperatures above the physical melt point indistinguishable
//! ("the datacenter no longer melts wax").

use crate::runner::{execute_all, reduction_percent, Run};
use vmt_core::PolicyKind;
use vmt_units::Celsius;

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The grouping value equivalent to the virtual melting temperature.
    pub gv: f64,
    /// The virtual melting temperature.
    pub vmt: Celsius,
    /// Offset from the physical melting temperature.
    pub delta_pmt: f64,
    /// Peak reduction of the reference (hypothetical-wax) run.
    pub reference_reduction: f64,
    /// Peak reduction of the matched VMT-TA run.
    pub matched_reduction: f64,
}

/// The physical melting temperature of the deployed wax.
const PMT_C: f64 = 35.7;
/// The paper's Δ rows.
pub const DELTAS: [f64; 10] = [2.0, 1.0, 0.0, -1.0, -2.0, -3.0, -4.0, -5.0, -6.0, -7.0];

/// Derives the mapping on a cluster of `servers` servers, searching the
/// GV grid `gv_lo..=gv_hi` at `gv_step` resolution.
pub fn table2_with_grid(servers: usize, gv_lo: f64, gv_hi: f64, gv_step: f64) -> Vec<Table2Row> {
    assert!(gv_step > 0.0 && gv_hi > gv_lo, "degenerate GV grid");
    let gvs: Vec<f64> = {
        let mut v = Vec::new();
        let mut gv = gv_lo;
        while gv <= gv_hi + 1e-9 {
            v.push(gv);
            gv += gv_step;
        }
        v
    };

    // Assemble every run: baseline, references, GV grid.
    let mut runs = vec![Run::new(servers, PolicyKind::RoundRobin)];
    for &delta in &DELTAS {
        let mut run = Run::new(servers, PolicyKind::RoundRobin);
        let wax = run.cluster.wax.as_mut().expect("paper cluster has wax");
        wax.material = wax
            .material
            .with_melt_temperature(Celsius::new(PMT_C + delta));
        runs.push(run);
    }
    for &gv in &gvs {
        runs.push(Run::new(servers, PolicyKind::VmtTa { gv }));
    }
    let results = execute_all(&runs);
    let baseline = &results[0];
    let ref_reductions: Vec<f64> = results[1..=DELTAS.len()]
        .iter()
        .map(|r| reduction_percent(r, baseline))
        .collect();
    let gv_reductions: Vec<f64> = results[1 + DELTAS.len()..]
        .iter()
        .map(|r| reduction_percent(r, baseline))
        .collect();

    // Both response curves are bell-shaped: reductions rise toward an
    // optimum (reference: the ideal physical melt temperature; VMT: the
    // ideal GV) and collapse past it (wax exhausts before the peak /
    // group too cool to melt). The paper's mapping aligns the two bells:
    // virtual melt temperatures on the reference's rising side map to
    // GVs below the optimum, the reference optimum maps to the optimal
    // GV, and over-lowered melt temperatures map to GVs above it. We
    // match by *relative height* (fraction of each curve's own peak), so
    // a reference that peaks higher than VMT's ceiling still maps.
    let ref_peak_pos = argmax(&ref_reductions);
    let gv_peak_pos = argmax(&gv_reductions);
    let ref_peak = ref_reductions[ref_peak_pos].max(1e-9);
    let gv_peak = gv_reductions[gv_peak_pos].max(1e-9);

    let mut rows = Vec::new();
    let mut min_pos = 0usize;
    for (i, (&delta, &target)) in DELTAS.iter().zip(&ref_reductions).enumerate() {
        let target_height = target / ref_peak;
        // Choose the branch of the VMT bell to search.
        let (lo, hi) = if i <= ref_peak_pos {
            (0, gv_peak_pos)
        } else {
            (gv_peak_pos, gv_reductions.len() - 1)
        };
        let (pos, _) = gv_reductions[lo..=hi]
            .iter()
            .enumerate()
            .map(|(k, &r)| (lo + k, r / gv_peak))
            .filter(|&(pos, _)| pos >= min_pos)
            .min_by(|a, b| {
                let da = (a.1 - target_height).abs();
                let db = (b.1 - target_height).abs();
                da.partial_cmp(&db).expect("finite reductions")
            })
            .unwrap_or((min_pos.min(gv_reductions.len() - 1), 0.0));
        min_pos = pos;
        rows.push(Table2Row {
            gv: gvs[pos],
            vmt: Celsius::new(PMT_C + delta),
            delta_pmt: delta,
            reference_reduction: target,
            matched_reduction: gv_reductions[pos],
        });
    }
    rows
}

/// Index of the maximum value.
fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Derives the mapping with the default grid (GV 19.5–32, 0.5 steps).
pub fn table2(servers: usize) -> Vec<Table2Row> {
    table2_with_grid(servers, 19.5, 32.0, 0.5)
}

/// Renders Table II in the paper's layout.
pub fn render(servers: usize) -> String {
    let mut table = crate::report::TextTable::new(vec![
        "GV",
        "VMT (°C)",
        "ΔPMT (°C)",
        "ref. reduction %",
        "matched %",
    ]);
    for row in table2(servers) {
        table.row(vec![
            format!("{:.2}", row.gv),
            format!("{:.1}", row.vmt.get()),
            format!("{:+.1}", row.delta_pmt),
            format!("{:.1}", row.reference_reduction),
            format!("{:.1}", row.matched_reduction),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_monotone_in_gv() {
        let rows = table2_with_grid(25, 20.0, 30.0, 1.0);
        assert_eq!(rows.len(), DELTAS.len());
        for pair in rows.windows(2) {
            assert!(pair[1].gv >= pair[0].gv, "{pair:?}");
            assert!(pair[1].vmt < pair[0].vmt);
        }
    }

    #[test]
    fn raising_the_virtual_melt_point_does_nothing() {
        // Δ=+2 reference wax (37.7 °C) never melts: reduction ≈ 0.
        let rows = table2_with_grid(25, 20.0, 30.0, 1.0);
        let plus_two = rows.iter().find(|r| r.delta_pmt == 2.0).unwrap();
        assert!(plus_two.reference_reduction.abs() < 1.0);
    }

    #[test]
    fn lowered_melt_points_melt_wax_under_round_robin() {
        // Somewhere in the −1..−5 range the hypothetical wax melts under
        // plain round robin and produces a real reduction.
        let rows = table2_with_grid(25, 20.0, 30.0, 1.0);
        let best_ref = rows
            .iter()
            .map(|r| r.reference_reduction)
            .fold(f64::MIN, f64::max);
        assert!(best_ref > 4.0, "no reference melted: best {best_ref}");
    }
}
