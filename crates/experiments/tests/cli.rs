//! CLI contract tests for the `vmt-experiments` binary.
//!
//! Usage errors (typos, missing values, unknown names) must exit 2 with
//! a pointer to `--help`; invalid *input files* exit 1; the record →
//! replay → check pipeline round-trips with exit 0. Every subcommand's
//! error path is pinned here so a CLI refactor cannot silently turn a
//! hard error into a default.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vmt-experiments"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Asserts a usage error: exit 2 and a help pointer on stderr.
fn assert_usage_error(args: &[&str], needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "`{}` should exit 2, stderr: {}",
        args.join(" "),
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(
        err.contains(needle),
        "`{}` stderr should mention `{needle}`: {err}",
        args.join(" ")
    );
    assert!(
        err.contains("--help"),
        "usage errors point at --help: {err}"
    );
}

/// A unique scratch path for this test process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vmt_cli_test_{}_{name}", std::process::id()))
}

#[test]
fn no_arguments_prints_help_and_exits_2() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).contains("usage:"));
}

#[test]
fn help_flag_exits_0() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for subcommand in ["run", "record", "replay", "check-telemetry", "check-flight"] {
        assert!(text.contains(subcommand), "help must list `{subcommand}`");
    }
}

#[test]
fn experiment_usage_errors() {
    assert_usage_error(&["fig99"], "unknown experiment id `fig99`");
    assert_usage_error(&["--servers", "10"], "unrecognized argument `--servers`");
    assert_usage_error(
        &["fig7", "--sevrers", "10"],
        "unrecognized argument `--sevrers`",
    );
    assert_usage_error(&["fig7", "--servers"], "flag `--servers` requires a value");
    assert_usage_error(&["fig7", "--servers", "ten"], "unparseable value `ten`");
}

#[test]
fn run_usage_errors() {
    // An unknown policy lists every valid policy name.
    let out = run(&["run", "--policy", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown policy `bogus`"), "got: {err}");
    for name in vmt_core::PolicyKind::NAMES {
        assert!(err.contains(name), "error must list `{name}`: {err}");
    }
    assert_usage_error(&["run", "--hours", "0"], "`--hours` must be positive");
    assert_usage_error(&["run", "--gv"], "flag `--gv` requires a value");
    assert_usage_error(&["run", "--flightdump", "x"], "unrecognized argument");
    // `--watchdogs` is a switch: it must not swallow a following flag.
    assert_usage_error(&["run", "--watchdogs", "--servers"], "requires a value");
}

#[test]
fn record_usage_errors() {
    assert_usage_error(&["record"], "usage: vmt-experiments record");
    assert_usage_error(
        &["record", "--servers", "5"],
        "usage: vmt-experiments record",
    );
    assert_usage_error(
        &["record", "/tmp/x.trace", "--policy", "nope"],
        "unknown policy `nope`",
    );
    assert_usage_error(
        &["record", "/tmp/x.trace", "--telemetry", "y"],
        "unrecognized argument `--telemetry`",
    );
}

#[test]
fn replay_usage_errors() {
    assert_usage_error(&["replay"], "usage: vmt-experiments replay");
    assert_usage_error(&["replay", "--until", "5"], "usage: vmt-experiments replay");
    assert_usage_error(&["replay", "/nonexistent/t.trace"], "cannot read");
}

#[test]
fn replay_rejects_a_corrupt_trace_with_exit_1() {
    let path = scratch("corrupt.trace");
    std::fs::write(&path, "{\"not\":\"a trace\"}\n").unwrap();
    let out = bin().arg("replay").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid trace"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn check_telemetry_usage_and_invalid_input() {
    assert_usage_error(
        &["check-telemetry"],
        "usage: vmt-experiments check-telemetry",
    );
    assert_usage_error(&["check-telemetry", "a", "b"], "usage:");
    assert_usage_error(&["check-telemetry", "/nonexistent/s.jsonl"], "cannot read");
    let path = scratch("bad.jsonl");
    std::fs::write(&path, "not json\n").unwrap();
    let out = bin().arg("check-telemetry").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("invalid telemetry stream"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn check_flight_usage_and_invalid_input() {
    assert_usage_error(&["check-flight"], "usage: vmt-experiments check-flight");
    assert_usage_error(&["check-flight", "/nonexistent/f.dump"], "cannot read");
    let path = scratch("bad.dump");
    std::fs::write(&path, "{\"schema\":true}\n").unwrap();
    let out = bin().arg("check-flight").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("invalid flight dump"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn check_metrics_usage_and_invalid_input() {
    assert_usage_error(&["check-metrics"], "usage: vmt-experiments check-metrics");
    assert_usage_error(&["check-metrics", "/nonexistent/m.prom"], "cannot read");
    assert_usage_error(
        &["check-metrics", "/tmp/x.prom", "--require"],
        "flag `--require` requires a value",
    );
    // A sample line with no preceding `# TYPE` declaration is malformed.
    let path = scratch("bad.prom");
    std::fs::write(&path, "junk 1\n# EOF\n").unwrap();
    let out = bin().arg("check-metrics").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid metrics exposition"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn check_metrics_validates_and_requires_families() {
    let path = scratch("good.prom");
    std::fs::write(
        &path,
        "# TYPE zone_temp_c gauge\nzone_temp_c{zone=\"0\"} 22.5\n# EOF\n",
    )
    .unwrap();
    let out = bin()
        .args(["check-metrics"])
        .arg(&path)
        .args(["--require", "zone_temp_c"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("1 metric families"));

    // A valid document missing a required family still exits 1.
    let out = bin()
        .args(["check-metrics"])
        .arg(&path)
        .args(["--require", "zone_temp_c,zone_crac_duty"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("missing required family `zone_crac_duty`"),
        "got: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn run_observability_usage_errors() {
    assert_usage_error(&["run", "--metrics-addr"], "requires a value");
    assert_usage_error(
        &["run", "--metrics-addr", "not-an-addr"],
        "cannot bind `--metrics-addr not-an-addr`",
    );
    assert_usage_error(&["run", "--series", "0"], "`--series` capacity");
    assert_usage_error(&["run", "--series", "ten"], "unparseable value `ten`");
    assert_usage_error(&["run", "--dashboard", "ten"], "unparseable value `ten`");
}

/// The full observability surface on one small zoned run: series,
/// dashboard (degrading to plain lines on a pipe), and a bound metrics
/// endpoint all come up and the run exits clean.
#[test]
fn run_with_observability_flags_exits_clean() {
    let out = bin()
        .args([
            "run",
            "--servers",
            "40",
            "--hours",
            "1",
            "--zones",
            "--series",
            "--dashboard",
            "30",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("serving metrics on http://127.0.0.1:"),
        "got: {err}"
    );
    // stderr is a pipe here, so the dashboard degrades to the plain
    // one-line progress form.
    assert!(err.contains("ticks/s"), "got: {err}");
    assert!(!err.contains('\x1b'), "no ANSI on a pipe: {err}");
}

/// The happy path end to end: record a small run, replay it in full and
/// as a prefix, and validate the trace survives the pipeline.
#[test]
fn record_replay_round_trip() {
    let trace = scratch("roundtrip.trace");
    let out = bin()
        .args(["record"])
        .arg(&trace)
        .args(["--servers", "5", "--hours", "2", "--policy", "vmt-wa"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("recorded vmt-wa"));

    let out = bin().arg("replay").arg(&trace).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("bit-identical"), "got: {text}");
    assert!(text.contains("final state digest matches"), "got: {text}");

    let out = bin()
        .arg("replay")
        .arg(&trace)
        .args(["--until", "30"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("30 ticks (prefix)"));

    let _ = std::fs::remove_file(&trace);
}

/// A forced thermal violation through the CLI: the run reports the
/// anomaly, and both the end-of-run dump and the `.anomaly1` sibling
/// pass `check-flight`.
#[test]
fn watchdog_run_produces_validating_dumps() {
    let dump = scratch("wd.dump");
    let out = bin()
        .args([
            "run",
            "--servers",
            "5",
            "--hours",
            "2",
            "--watchdogs",
            "--red-line",
            "28",
            "--flight-dump",
        ])
        .arg(&dump)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("anomalies fired"));

    let anomaly = PathBuf::from(format!("{}.anomaly1", dump.display()));
    for path in [&dump, &anomaly] {
        let out = bin().arg("check-flight").arg(path).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(0),
            "check-flight {} failed: {}",
            path.display(),
            stderr(&out)
        );
    }
    let out = bin().arg("check-flight").arg(&anomaly).output().unwrap();
    assert!(stdout(&out).contains("watchdog thermal-violation"));

    let _ = std::fs::remove_file(&dump);
    let _ = std::fs::remove_file(&anomaly);
}

#[test]
fn snapshot_usage_errors() {
    assert_usage_error(&["snapshot"], "usage: vmt-experiments snapshot");
    assert_usage_error(
        &["snapshot", "--at", "5"],
        "usage: vmt-experiments snapshot",
    );
    assert_usage_error(
        &["snapshot", "/tmp/x.snap"],
        "snapshot requires `--at TICK` or `--from-flight DUMP`",
    );
    assert_usage_error(
        &["snapshot", "/tmp/x.snap", "--at", "5", "--from-flight", "d"],
        "mutually exclusive",
    );
    assert_usage_error(
        &["snapshot", "/tmp/x.snap", "--at", "ten"],
        "unparseable value `ten`",
    );
    assert_usage_error(
        &[
            "snapshot",
            "/tmp/x.snap",
            "--at",
            "99999",
            "--servers",
            "2",
            "--hours",
            "1",
        ],
        "beyond the horizon",
    );
    assert_usage_error(
        &["snapshot", "/tmp/x.snap", "--at", "5", "--policy", "bogus"],
        "unknown policy `bogus`",
    );
    assert_usage_error(
        &["snapshot", "/tmp/x.snap", "--at", "5", "--from-flight"],
        "requires a value",
    );
}

#[test]
fn resume_usage_errors() {
    assert_usage_error(&["resume"], "usage: vmt-experiments resume");
    assert_usage_error(&["resume", "--until", "5"], "usage: vmt-experiments resume");
    assert_usage_error(&["resume", "/nonexistent/x.snap"], "cannot read");
    assert_usage_error(
        &["resume", "/tmp/x.snap", "--servers", "5"],
        "unrecognized argument `--servers`",
    );
}

#[test]
fn resume_rejects_corrupt_snapshots_with_exit_1() {
    // A wrong magic, a bad version, and a truncated payload each fail
    // with a typed message, never a panic.
    for (name, contents, needle) in [
        ("magic", "NOTSNAP v1 digest=0x0 bytes=2\n{}\n", "magic"),
        (
            "version",
            "VMTSNAP v99 digest=0x0000000000000000 bytes=2\n{}\n",
            "version",
        ),
        (
            "trunc",
            "VMTSNAP v1 digest=0x0000000000000000 bytes=9999\n{}\n",
            "length mismatch",
        ),
    ] {
        let path = scratch(&format!("bad_{name}.snap"));
        std::fs::write(&path, contents).unwrap();
        let out = bin().arg("resume").arg(&path).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{name}: {}", stderr(&out));
        let err = stderr(&out).to_lowercase();
        assert!(
            err.contains("invalid snapshot") && err.contains(needle),
            "{name} stderr should mention `{needle}`: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// The checkpoint happy path end to end: snapshot mid-run, resume to the
/// horizon at two thread counts, and hold the digests to each other.
#[test]
fn snapshot_resume_round_trip() {
    let snap = scratch("roundtrip.snap");
    let out = bin()
        .arg("snapshot")
        .arg(&snap)
        .args([
            "--at",
            "30",
            "--servers",
            "5",
            "--hours",
            "2",
            "--policy",
            "vmt-wa",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("snapshot of vmt-wa"));

    let resume = |extra: &[&str]| {
        let out = bin().arg("resume").arg(&snap).args(extra).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        stdout(&out)
    };
    let single = resume(&["--threads", "1"]);
    assert!(
        single.contains("resumed vmt-wa at tick 30"),
        "got: {single}"
    );
    assert!(single.contains("final state digest"), "got: {single}");
    // Bit-identical at any thread count: the full transcripts match.
    let threaded = resume(&["--threads", "4"]);
    assert_eq!(single, threaded);
    // A prefix resume stops at the requested tick.
    let prefix = resume(&["--until", "60"]);
    assert!(prefix.contains("ran to tick 60"), "got: {prefix}");
    assert!(!prefix.contains("final state digest"), "got: {prefix}");

    let _ = std::fs::remove_file(&snap);
}

/// Restore interoperates with the flight recorder: a watchdog anomaly
/// dump names the tick, `snapshot --from-flight` checkpoints there, and
/// the checkpoint resumes cleanly.
#[test]
fn snapshot_from_flight_dump_resumes() {
    let dump = scratch("ff.dump");
    let out = bin()
        .args([
            "run",
            "--servers",
            "5",
            "--hours",
            "2",
            "--watchdogs",
            "--red-line",
            "28",
        ])
        .arg("--flight-dump")
        .arg(&dump)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let anomaly = PathBuf::from(format!("{}.anomaly1", dump.display()));

    let snap = scratch("ff.snap");
    let out = bin()
        .arg("snapshot")
        .arg(&snap)
        .arg("--from-flight")
        .arg(&anomaly)
        .args(["--servers", "5", "--hours", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    let out = bin().arg("resume").arg(&snap).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("final state digest"));

    for path in [&dump, &anomaly, &snap] {
        let _ = std::fs::remove_file(path);
    }
}
