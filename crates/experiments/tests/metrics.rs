//! In-process scrape-endpoint test: a small zoned run publishes its
//! exposition, a real TCP client scrapes `GET /metrics`, and the strict
//! OpenMetrics parser validates what came back — the same loop the CI
//! metrics smoke leg drives through the binary.

use std::io::{Read, Write};
use std::net::TcpStream;
use vmt_core::PolicyKind;
use vmt_experiments::runner::Run;
use vmt_telemetry::{parse_openmetrics, MetricsPublisher, MetricsServer, TelemetryConfig};

#[test]
fn scrape_endpoint_serves_per_zone_families() {
    let mut run = Run::new(40, PolicyKind::parse("vmt-wa", 22.0).expect("policy"));
    run.trace.horizon = vmt_units::Hours::new(2.0);
    let mut spec = vmt_dcsim::ZoneSpec::paper_default();
    spec.racks_per_row = 1;
    spec.rows_per_zone = 1; // two 20-server zones over 40 servers
    run.cluster.topology = Some(spec);

    let publisher = MetricsPublisher::new();
    let server = MetricsServer::bind("127.0.0.1:0", publisher.clone()).expect("bind");
    let telemetry = TelemetryConfig::new()
        .with_series(64)
        .with_publisher(publisher);
    run.execute_with_telemetry(telemetry);

    // Scrape after the horizon: the closing publication is still served.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("head and body");
    assert!(head.contains("200 OK"), "head: {head}");
    assert!(head.contains("openmetrics-text"), "head: {head}");

    let exposition = parse_openmetrics(body).expect("scrape output parses strictly");
    for family in [
        "engine_ticks",
        "cluster_utilization",
        "cluster_cooling_w",
        "zone_temp_c",
        "zone_crac_duty",
        "zone_headroom_c",
        "zone_melt_fraction",
        "zone_hot_occupancy",
    ] {
        assert!(
            exposition.family(family).is_some(),
            "missing family `{family}`"
        );
    }

    // One gauge sample per zone, labelled by zone index.
    let temps = exposition.family("zone_temp_c").expect("zone temps");
    assert_eq!(temps.samples.len(), 2);
    for zone in ["0", "1"] {
        assert!(
            temps
                .samples
                .iter()
                .any(|s| s.labels.iter().any(|(k, v)| k == "zone" && v == zone)),
            "no sample for zone {zone}"
        );
    }
    // CRAC duty is a fraction of plant capacity.
    for s in &exposition.family("zone_crac_duty").expect("duty").samples {
        assert!((0.0..=1.0).contains(&s.value), "duty out of range: {s:?}");
    }
    // The ticks counter pins the exposition to the full run: 2 h of
    // 60 s ticks.
    let ticks = exposition.family("engine_ticks").expect("ticks");
    assert_eq!(ticks.samples[0].value, 120.0);
}
