//! The flight recorder: a bounded in-memory trace of recent engine
//! activity.
//!
//! A multi-hour simulation emits aggregate snapshots, but post-mortem
//! forensics ("why did this server cross the PMT at tick 19,412?") need
//! the *causal chain* — which jobs landed where, when wax crossed its
//! threshold, how the hot group moved. Recording every such event for a
//! whole run would be unbounded; the flight recorder instead keeps the
//! last `capacity` records in a fixed, preallocated ring. Writing is a
//! single slot store on the engine thread — no locks, no allocation
//! after construction — and the ring is only read when a dump is
//! requested (on demand or when a watchdog fires), so the armed-path
//! overhead stays near zero and the disabled path costs nothing at all.

use crate::watchdog::WatchdogKind;
use std::io::{self, Write};

/// Schema version stamped into [`DumpHeader`] lines.
pub const DUMP_SCHEMA_VERSION: u32 = 1;

/// One compact record in the flight ring.
///
/// Records are `Copy` and fixed-size so the ring never allocates after
/// construction; numeric payloads are narrowed (`f32` temperatures,
/// `u32` servers) to keep slots small — the dump is diagnostic, not a
/// bit-exact replay source (that is [`crate::replay`]'s job).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TraceRecord {
    /// A job was placed on a server.
    JobPlaced {
        /// Tick the placement happened on (0-based).
        tick: u64,
        /// Job id.
        job: u64,
        /// Target server index.
        server: u32,
        /// Workload kind index ([`vmt_workload::WorkloadKind::index`]).
        kind: u8,
        /// Planned duration in ticks.
        duration_ticks: u32,
    },
    /// A job could not be placed anywhere and was dropped.
    JobDropped {
        /// Tick the drop happened on (0-based).
        tick: u64,
        /// Job id.
        job: u64,
        /// Workload kind index.
        kind: u8,
    },
    /// A job finished and released its core.
    JobDeparted {
        /// Tick the departure happened on (0-based).
        tick: u64,
        /// Job id.
        job: u64,
        /// Server the job ran on.
        server: u32,
    },
    /// A server's estimator-reported melt fraction crossed the
    /// melt-event threshold.
    MeltCrossing {
        /// Tick the crossing was observed at (1-based, post-physics).
        tick: u64,
        /// Server index.
        server: u32,
        /// `true` = began melting, `false` = refroze.
        melting: bool,
        /// Air-at-wax temperature at observation (°C).
        air_c: f32,
    },
    /// The scheduler's hot group changed size.
    HotGroupResize {
        /// Tick the resize was observed at (1-based).
        tick: u64,
        /// Size before.
        previous: u32,
        /// Size after.
        current: u32,
    },
    /// The policy spilled jobs out of their preferred group this tick.
    SchedulerSpill {
        /// Tick the spills happened on (1-based).
        tick: u64,
        /// Number of spills this tick.
        spills: u32,
    },
    /// A watchdog fired at this point in the stream.
    AnomalyMark {
        /// Tick the watchdog fired at (1-based).
        tick: u64,
        /// Which watchdog fired.
        watchdog: WatchdogKind,
    },
}

impl TraceRecord {
    /// The record's tick stamp.
    pub fn tick(&self) -> u64 {
        match *self {
            TraceRecord::JobPlaced { tick, .. }
            | TraceRecord::JobDropped { tick, .. }
            | TraceRecord::JobDeparted { tick, .. }
            | TraceRecord::MeltCrossing { tick, .. }
            | TraceRecord::HotGroupResize { tick, .. }
            | TraceRecord::SchedulerSpill { tick, .. }
            | TraceRecord::AnomalyMark { tick, .. } => tick,
        }
    }
}

/// First line of a flight dump: what triggered it and what it holds.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DumpHeader {
    /// Schema version ([`DUMP_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Tick the dump was taken at.
    pub tick: u64,
    /// The watchdog that triggered the dump, or `None` for an on-demand
    /// (`--flight-dump`) dump.
    pub watchdog: Option<WatchdogKind>,
    /// Ring capacity at recording time.
    pub capacity: u64,
    /// Records in this dump.
    pub records: u64,
    /// Records pushed over the whole run (`records` of them retained).
    pub records_total: u64,
    /// Ticks of context the dump spans (dump tick minus oldest record's
    /// tick).
    pub context_ticks: u64,
}

/// What [`validate_dump`] found in a well-formed dump.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpSummary {
    /// The dump's header line.
    pub header: DumpHeader,
    /// Parsed record count (must equal `header.records`).
    pub records: u64,
    /// Ticks spanned by the records themselves.
    pub context_ticks: u64,
}

/// A fixed-capacity ring of [`TraceRecord`]s.
///
/// Single-writer by design: the engine thread pushes, and the same
/// thread snapshots/dumps. Pushing into a full ring overwrites the
/// oldest record, so the ring always holds the most recent `capacity`
/// records — exactly the pre-anomaly context a watchdog dump wants.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Records ever pushed (retained + overwritten).
    total: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding up to `capacity` records (clamped to
    /// at least 16). The full backing store is allocated up front so the
    /// armed hot path never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records ever pushed, including overwritten ones.
    pub fn records_total(&self) -> u64 {
        self.total
    }

    /// Appends a record, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else {
            self.buf[self.head] = record;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }

    /// The retained records in chronological order (oldest first).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Ticks of context currently in the ring (newest minus oldest
    /// record tick; 0 when empty).
    pub fn context_ticks(&self) -> u64 {
        let records = self.snapshot();
        match (records.first(), records.last()) {
            (Some(first), Some(last)) => last.tick().saturating_sub(first.tick()),
            _ => 0,
        }
    }

    /// Writes the ring as a JSONL dump: one [`DumpHeader`] line, then
    /// one line per record, oldest first.
    pub fn dump_jsonl(
        &self,
        writer: &mut dyn Write,
        tick: u64,
        watchdog: Option<WatchdogKind>,
    ) -> io::Result<()> {
        let records = self.snapshot();
        let context_ticks = records
            .first()
            .map(|first| tick.saturating_sub(first.tick()))
            .unwrap_or(0);
        let header = DumpHeader {
            schema_version: DUMP_SCHEMA_VERSION,
            tick,
            watchdog,
            capacity: self.capacity as u64,
            records: records.len() as u64,
            records_total: self.total,
            context_ticks,
        };
        let line = serde_json::to_string(&header).expect("dump header serializes");
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        for record in &records {
            let line = serde_json::to_string(record).expect("trace records serialize");
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()
    }
}

/// Parses a flight dump written by [`FlightRecorder::dump_jsonl`] and
/// checks its shape: a [`DumpHeader`] first, every following line a
/// valid [`TraceRecord`], record count matching the header, and ticks
/// non-decreasing (the ring is chronological by construction).
pub fn validate_dump(text: &str) -> Result<DumpSummary, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or_else(|| "dump is empty".to_string())?;
    let header: DumpHeader = serde_json::from_str(header_line)
        .map_err(|e| format!("line 1: not a dump header: {e:?}"))?;
    if header.schema_version != DUMP_SCHEMA_VERSION {
        return Err(format!(
            "unsupported dump schema version {} (expected {DUMP_SCHEMA_VERSION})",
            header.schema_version
        ));
    }
    let mut records = 0u64;
    let mut first_tick = None;
    let mut last_tick = 0u64;
    for (i, line) in lines.enumerate() {
        let record: TraceRecord = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not a trace record: {e:?}", i + 2))?;
        let tick = record.tick();
        if let Some(first) = first_tick {
            if tick < last_tick {
                return Err(format!(
                    "line {}: tick {tick} goes backwards (after {last_tick})",
                    i + 2
                ));
            }
            let _ = first;
        } else {
            first_tick = Some(tick);
        }
        last_tick = tick;
        records += 1;
    }
    if records != header.records {
        return Err(format!(
            "header claims {} records, dump has {records}",
            header.records
        ));
    }
    let context_ticks = first_tick.map(|f| last_tick - f).unwrap_or(0);
    Ok(DumpSummary {
        header,
        records,
        context_ticks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(tick: u64, job: u64) -> TraceRecord {
        TraceRecord::JobPlaced {
            tick,
            job,
            server: 3,
            kind: 1,
            duration_ticks: 10,
        }
    }

    #[test]
    fn ring_retains_most_recent_records() {
        let mut rec = FlightRecorder::with_capacity(16);
        for i in 0..40 {
            rec.push(placed(i, i));
        }
        assert_eq!(rec.len(), 16);
        assert_eq!(rec.records_total(), 40);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 16);
        assert_eq!(snap.first().unwrap().tick(), 24);
        assert_eq!(snap.last().unwrap().tick(), 39);
        assert_eq!(rec.context_ticks(), 15);
    }

    #[test]
    fn partially_filled_ring_keeps_order() {
        let mut rec = FlightRecorder::with_capacity(64);
        for i in 0..5 {
            rec.push(placed(i, i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0].tick(), 0);
        assert_eq!(snap[4].tick(), 4);
    }

    #[test]
    fn capacity_is_clamped_to_a_sane_floor() {
        let rec = FlightRecorder::with_capacity(1);
        assert_eq!(rec.capacity(), 16);
    }

    #[test]
    fn dump_round_trips_and_validates() {
        let mut rec = FlightRecorder::with_capacity(32);
        for i in 0..10 {
            rec.push(placed(i, i));
        }
        rec.push(TraceRecord::MeltCrossing {
            tick: 10,
            server: 7,
            melting: true,
            air_c: 36.25,
        });
        rec.push(TraceRecord::AnomalyMark {
            tick: 11,
            watchdog: WatchdogKind::ThermalViolation,
        });
        let mut out = Vec::new();
        rec.dump_jsonl(&mut out, 11, Some(WatchdogKind::ThermalViolation))
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let summary = validate_dump(&text).expect("dump validates");
        assert_eq!(summary.records, 12);
        assert_eq!(
            summary.header.watchdog,
            Some(WatchdogKind::ThermalViolation)
        );
        assert_eq!(summary.header.context_ticks, 11);
        assert_eq!(summary.context_ticks, 11);
    }

    #[test]
    fn empty_dump_validates_with_zero_records() {
        let rec = FlightRecorder::with_capacity(16);
        let mut out = Vec::new();
        rec.dump_jsonl(&mut out, 5, None).unwrap();
        let summary = validate_dump(&String::from_utf8(out).unwrap()).unwrap();
        assert_eq!(summary.records, 0);
        assert_eq!(summary.header.watchdog, None);
    }

    #[test]
    fn corrupted_dump_is_rejected_with_line_numbers() {
        let mut rec = FlightRecorder::with_capacity(16);
        rec.push(placed(1, 1));
        let mut out = Vec::new();
        rec.dump_jsonl(&mut out, 1, None).unwrap();
        let mut text = String::from_utf8(out).unwrap();
        text.push_str("garbage\n");
        let err = validate_dump(&text).unwrap_err();
        assert!(err.starts_with("line 3:"), "got: {err}");
    }

    #[test]
    fn record_count_mismatch_is_rejected() {
        let mut rec = FlightRecorder::with_capacity(16);
        rec.push(placed(1, 1));
        rec.push(placed(2, 2));
        let mut out = Vec::new();
        rec.dump_jsonl(&mut out, 2, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        let err = validate_dump(&truncated).unwrap_err();
        assert!(err.contains("claims 2 records"), "got: {err}");
    }

    #[test]
    fn out_of_order_ticks_are_rejected() {
        let header = serde_json::to_string(&DumpHeader {
            schema_version: DUMP_SCHEMA_VERSION,
            tick: 5,
            watchdog: None,
            capacity: 16,
            records: 2,
            records_total: 2,
            context_ticks: 0,
        })
        .unwrap();
        let text = format!(
            "{header}\n{}\n{}\n",
            serde_json::to_string(&placed(5, 1)).unwrap(),
            serde_json::to_string(&placed(3, 2)).unwrap()
        );
        let err = validate_dump(&text).unwrap_err();
        assert!(err.contains("goes backwards"), "got: {err}");
    }
}
