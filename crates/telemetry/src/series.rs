//! Fixed-capacity, tick-indexed ring-buffer time series.
//!
//! A [`Series`] stores the most recent `capacity` samples of one
//! per-tick quantity. Samples are indexed by *simulation tick*, never by
//! wall clock, so an instrumented run records exactly the same values at
//! any thread count and stays bit-identical to an uninstrumented run —
//! the series only observes state the tick already computed.
//!
//! Pushing is a short mutex-guarded append (series are written once per
//! tick per quantity, not per job, so lock-free machinery would buy
//! nothing); reading clones the window out as a [`SeriesSnapshot`],
//! which offers windowed min/mean/max downsampling for dashboards and
//! scrape endpoints.

use std::sync::{Arc, Mutex};

/// A fixed-capacity ring of per-tick samples.
///
/// Cloning the handle is cheap (`Arc`); all clones share the same ring.
/// Capacity is clamped to at least 2 at construction.
///
/// # Examples
///
/// ```
/// use vmt_telemetry::Series;
///
/// let s = Series::with_capacity(3);
/// for tick in 1..=5 {
///     s.push(tick, tick as f64);
/// }
/// let snap = s.snapshot();
/// assert_eq!(snap.last_tick, 5);
/// assert_eq!(snap.values, vec![3.0, 4.0, 5.0]); // oldest two evicted
/// ```
#[derive(Debug)]
pub struct Series {
    inner: Mutex<SeriesInner>,
}

#[derive(Debug)]
struct SeriesInner {
    /// Ring storage; grows up to `capacity`, then wraps.
    values: Vec<f64>,
    /// Index of the *oldest* sample once the ring is full.
    head: usize,
    /// Maximum retained samples.
    capacity: usize,
    /// Tick of the newest sample (0 when empty).
    last_tick: u64,
}

impl Series {
    /// Creates an empty series retaining at most `capacity` samples
    /// (clamped to at least 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Series {
            inner: Mutex::new(SeriesInner {
                values: Vec::with_capacity(capacity),
                head: 0,
                capacity,
                last_tick: 0,
            }),
        }
    }

    /// Appends one sample for `tick`, evicting the oldest sample when
    /// the ring is full. Ticks are expected to be monotonically
    /// increasing (the engine pushes once per tick); the newest tick is
    /// retained so readers can anchor the window on the time axis.
    pub fn push(&self, tick: u64, value: f64) {
        let mut inner = self.inner.lock().expect("series poisoned");
        if inner.values.len() < inner.capacity {
            inner.values.push(value);
        } else {
            let head = inner.head;
            inner.values[head] = value;
            inner.head = (head + 1) % inner.capacity;
        }
        inner.last_tick = tick;
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("series poisoned").values.len()
    }

    /// True when no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the window out, oldest sample first.
    pub fn snapshot(&self) -> SeriesSnapshot {
        let inner = self.inner.lock().expect("series poisoned");
        let mut values = Vec::with_capacity(inner.values.len());
        values.extend_from_slice(&inner.values[inner.head..]);
        values.extend_from_slice(&inner.values[..inner.head]);
        SeriesSnapshot {
            last_tick: inner.last_tick,
            capacity: inner.capacity,
            values,
        }
    }
}

/// A point-in-time copy of a [`Series`] window, oldest sample first.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SeriesSnapshot {
    /// Tick of the newest sample (0 when the series is empty). Sample
    /// `values[i]` belongs to tick `last_tick - (values.len() - 1 - i)`.
    pub last_tick: u64,
    /// Ring capacity the series was built with.
    pub capacity: usize,
    /// Retained samples, oldest first.
    pub values: Vec<f64>,
}

/// One downsampled window of a series: `count` consecutive samples
/// folded to their min / mean / max.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SeriesBucket {
    /// Tick of the first sample in the window.
    pub start_tick: u64,
    /// Tick of the last sample in the window.
    pub end_tick: u64,
    /// Samples folded into this bucket.
    pub count: usize,
    /// Smallest sample in the window.
    pub min: f64,
    /// Arithmetic mean of the window.
    pub mean: f64,
    /// Largest sample in the window.
    pub max: f64,
}

impl SeriesSnapshot {
    /// Tick of the oldest retained sample.
    pub fn first_tick(&self) -> u64 {
        self.last_tick
            .saturating_sub(self.values.len().saturating_sub(1) as u64)
    }

    /// Newest sample, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Folds the window into buckets of `window` consecutive samples
    /// (min / mean / max each), oldest bucket first. Buckets are aligned
    /// from the oldest sample; the final bucket may be short. `window`
    /// is clamped to at least 1. Returns an empty vector for an empty
    /// series.
    pub fn downsample(&self, window: usize) -> Vec<SeriesBucket> {
        let window = window.max(1);
        let first = self.first_tick();
        self.values
            .chunks(window)
            .enumerate()
            .map(|(i, chunk)| {
                let start = first + (i * window) as u64;
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut sum = 0.0;
                for &v in chunk {
                    min = min.min(v);
                    max = max.max(v);
                    sum += v;
                }
                SeriesBucket {
                    start_tick: start,
                    end_tick: start + (chunk.len() - 1) as u64,
                    count: chunk.len(),
                    min,
                    mean: sum / chunk.len() as f64,
                    max,
                }
            })
            .collect()
    }

    /// Downsamples so the result has at most `buckets` entries — the
    /// shape a fixed-width sparkline wants. Returns one bucket per
    /// sample when the window already fits.
    pub fn downsample_to(&self, buckets: usize) -> Vec<SeriesBucket> {
        let buckets = buckets.max(1);
        let window = self.values.len().div_ceil(buckets);
        self.downsample(window)
    }
}

/// Shared handle to a registered series (see
/// [`MetricsRegistry::series`](crate::MetricsRegistry::series)).
pub type SharedSeries = Arc<Series>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_oldest_first() {
        let s = Series::with_capacity(4);
        assert!(s.is_empty());
        for tick in 1..=6 {
            s.push(tick, tick as f64 * 10.0);
        }
        let snap = s.snapshot();
        assert_eq!(snap.values, vec![30.0, 40.0, 50.0, 60.0]);
        assert_eq!(snap.last_tick, 6);
        assert_eq!(snap.first_tick(), 3);
        assert_eq!(snap.last_value(), Some(60.0));
    }

    #[test]
    fn capacity_clamped_to_two() {
        let s = Series::with_capacity(0);
        s.push(1, 1.0);
        s.push(2, 2.0);
        s.push(3, 3.0);
        assert_eq!(s.snapshot().values, vec![2.0, 3.0]);
    }

    #[test]
    fn downsample_folds_min_mean_max() {
        let s = Series::with_capacity(8);
        for (i, v) in [1.0, 3.0, 2.0, 8.0, 4.0].iter().enumerate() {
            s.push(i as u64 + 1, *v);
        }
        let buckets = s.snapshot().downsample(2);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].start_tick, 1);
        assert_eq!(buckets[0].end_tick, 2);
        assert_eq!((buckets[0].min, buckets[0].max), (1.0, 3.0));
        assert!((buckets[0].mean - 2.0).abs() < 1e-12);
        assert_eq!(buckets[1].count, 2);
        assert_eq!((buckets[1].min, buckets[1].max), (2.0, 8.0));
        // Short tail bucket.
        assert_eq!(buckets[2].count, 1);
        assert_eq!(buckets[2].start_tick, 5);
        assert_eq!(
            (buckets[2].min, buckets[2].mean, buckets[2].max),
            (4.0, 4.0, 4.0)
        );
    }

    #[test]
    fn downsample_to_bounds_bucket_count() {
        let s = Series::with_capacity(100);
        for tick in 0..100u64 {
            s.push(tick + 1, tick as f64);
        }
        let snap = s.snapshot();
        assert_eq!(snap.downsample_to(10).len(), 10);
        assert!(snap.downsample_to(7).len() <= 7);
        assert_eq!(snap.downsample_to(1000).len(), 100);
        assert!(snap.downsample(1_000_000).len() == 1);
    }

    #[test]
    fn empty_series_downsamples_to_nothing() {
        let s = Series::with_capacity(4);
        let snap = s.snapshot();
        assert!(snap.downsample(5).is_empty());
        assert_eq!(snap.last_value(), None);
        assert_eq!(snap.first_tick(), 0);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let s = Series::with_capacity(3);
        for tick in 1..=5 {
            s.push(tick, tick as f64 / 2.0);
        }
        let snap = s.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: SeriesSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
