//! OpenMetrics / Prometheus text exposition over a [`MetricsSnapshot`].
//!
//! The writer ([`render_openmetrics`]) turns a snapshot into the
//! OpenMetrics text format: one `# TYPE` (and, when registered via
//! [`help`]-style tables, `# HELP`) block per metric family, samples
//! with escaped label values, `NaN` / `+Inf` / `-Inf` rendered the way
//! scrapers expect, histogram families exploded into cumulative
//! `_bucket{le=...}` / `_sum` / `_count`, and a final `# EOF` line.
//! Output ordering is fully deterministic: families sort by name,
//! samples within a family by label set.
//!
//! Registry names use dots for namespacing (`engine.ticks`) and an
//! optional brace-suffix for labels (`zone.temp_c{zone="3"}`). The
//! writer maps dots to underscores — `zone_temp_c{zone="3"}` — so every
//! labelled instance of a family folds into one exposition family.
//!
//! The strict parser ([`parse_openmetrics`]) is the other half of the
//! contract: tests and the `check-metrics` CLI feed scraped text back
//! through it, so a malformed exposition is a hard failure, not a
//! silently-ignored line.

use crate::registry::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Metric family kinds in an exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`<name>_total` samples).
    Counter,
    /// Last-value gauge.
    Gauge,
    /// Cumulative-bucket histogram (`_bucket`/`_sum`/`_count`).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (family plus any `_total`/`_bucket`/... suffix).
    pub name: String,
    /// Label pairs in appearance order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value (may be `NaN` or infinite).
    pub value: f64,
}

/// One parsed metric family: its `# TYPE`, optional `# HELP`, and the
/// contiguous samples that follow.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Family name (exposition form: underscores, no suffix).
    pub name: String,
    /// Declared kind.
    pub kind: MetricKind,
    /// `# HELP` text, unescaped, if present.
    pub help: Option<String>,
    /// Samples belonging to this family.
    pub samples: Vec<Sample>,
}

/// A fully parsed exposition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Exposition {
    /// Families in document order.
    pub families: Vec<MetricFamily>,
}

impl Exposition {
    /// Looks a family up by exposition name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }
}

/// Splits a registry name into its family part and label suffix, e.g.
/// `zone.temp_c{zone="3"}` → (`zone_temp_c`, `{zone="3"}`). Dots in the
/// family become underscores; any other character outside
/// `[a-zA-Z0-9_:]` is replaced by `_` so arbitrary registry names stay
/// within the exposition grammar.
fn split_name(raw: &str) -> (String, &str) {
    let (family, labels) = match raw.find('{') {
        Some(pos) => (&raw[..pos], &raw[pos..]),
        None => (raw, ""),
    };
    let family: String = family
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    (family, labels)
}

/// Escapes a label value per the exposition grammar.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text (no quote escaping there, per the format).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders an `f64` the way scrapers expect (`NaN`, `+Inf`, `-Inf`).
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Parses a registry label suffix (`{zone="3",kind="wax"}` or empty)
/// into pairs. The registry-side convention requires quoted values; a
/// malformed suffix falls back to a single `raw` label rather than
/// panicking on the render path.
fn parse_label_suffix(suffix: &str) -> Vec<(String, String)> {
    if suffix.is_empty() {
        return Vec::new();
    }
    match parse_label_block(suffix, 0) {
        Ok((labels, _)) => labels,
        Err(_) => vec![("raw".to_owned(), escape_label(suffix))],
    }
}

/// Merges extra labels (e.g. histogram `le`) after the declared ones
/// and renders the full `{...}` block, or the empty string when there
/// are no labels.
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[derive(Debug)]
struct PendingSample {
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Debug)]
struct PendingFamily {
    kind: MetricKind,
    samples: Vec<PendingSample>,
}

/// Renders `snapshot` as OpenMetrics text. `help` maps exposition
/// family names (underscore form) to `# HELP` text; families without an
/// entry get only a `# TYPE` line. Registered series are exposed as
/// gauges carrying their newest sample — scrape semantics are
/// point-in-time; history stays in the snapshot for dashboards.
///
/// Counters gain the `_total` sample suffix, histograms render
/// cumulative `_bucket{le=...}` rows ending in `le="+Inf"` plus `_sum` /
/// `_count`. Families are emitted in name order and samples in label
/// order, so two renders of equal snapshots are byte-identical.
pub fn render_openmetrics(snapshot: &MetricsSnapshot, help: &[(&str, &str)]) -> String {
    let mut families: BTreeMap<String, PendingFamily> = BTreeMap::new();
    let mut push = |raw: &str, kind: MetricKind, suffix: &'static str, extra_value: f64| {
        let (family, label_suffix) = split_name(raw);
        let labels = parse_label_suffix(label_suffix);
        let entry = families.entry(family).or_insert_with(|| PendingFamily {
            kind,
            samples: Vec::new(),
        });
        entry.samples.push(PendingSample {
            suffix,
            labels,
            value: extra_value,
        });
    };

    for (name, value) in &snapshot.counters {
        push(name, MetricKind::Counter, "_total", *value as f64);
    }
    for (name, value) in &snapshot.gauges {
        push(name, MetricKind::Gauge, "", *value);
    }
    for (name, window) in &snapshot.series {
        push(
            name,
            MetricKind::Gauge,
            "",
            window.last_value().unwrap_or(f64::NAN),
        );
    }

    let mut out = String::new();
    let help_for = |family: &str| {
        help.iter()
            .find(|(name, _)| *name == family)
            .map(|(_, text)| *text)
    };

    // Counters, gauges, and series share the simple one-sample shape;
    // histograms are rendered in the same name-sorted pass below.
    let mut histograms: BTreeMap<String, Vec<(&str, &crate::HistogramSnapshot)>> = BTreeMap::new();
    for (name, hist) in &snapshot.histograms {
        let (family, _) = split_name(name);
        histograms.entry(family).or_default().push((name, hist));
    }

    let mut names: Vec<&String> = families.keys().collect();
    names.extend(histograms.keys());
    names.sort();
    names.dedup();

    for family in names {
        if let Some(pending) = families.get(family) {
            if let Some(text) = help_for(family) {
                let _ = writeln!(out, "# HELP {family} {}", escape_help(text));
            }
            let _ = writeln!(out, "# TYPE {family} {}", pending.kind.as_str());
            let mut samples: Vec<&PendingSample> = pending.samples.iter().collect();
            samples.sort_by(|a, b| a.labels.cmp(&b.labels));
            for sample in samples {
                let _ = writeln!(
                    out,
                    "{family}{}{} {}",
                    sample.suffix,
                    render_labels(&sample.labels),
                    render_value(sample.value)
                );
            }
        }
        if let Some(hists) = histograms.get(family) {
            if !families.contains_key(family) {
                if let Some(text) = help_for(family) {
                    let _ = writeln!(out, "# HELP {family} {}", escape_help(text));
                }
                let _ = writeln!(out, "# TYPE {family} histogram");
            }
            let mut hists: Vec<_> = hists.clone();
            hists.sort_by_key(|(raw, _)| *raw);
            for (raw, hist) in hists {
                let (_, label_suffix) = split_name(raw);
                let base_labels = parse_label_suffix(label_suffix);
                let mut cumulative = 0u64;
                for (i, bound) in hist.bounds.iter().enumerate() {
                    cumulative += hist.counts.get(i).copied().unwrap_or(0);
                    let mut labels = base_labels.clone();
                    labels.push(("le".to_owned(), render_value(*bound)));
                    let _ = writeln!(
                        out,
                        "{family}_bucket{} {cumulative}",
                        render_labels(&labels)
                    );
                }
                let mut labels = base_labels.clone();
                labels.push(("le".to_owned(), "+Inf".to_owned()));
                let _ = writeln!(
                    out,
                    "{family}_bucket{} {}",
                    render_labels(&labels),
                    hist.total
                );
                let _ = writeln!(
                    out,
                    "{family}_sum{} {}",
                    render_labels(&base_labels),
                    render_value(hist.sum)
                );
                let _ = writeln!(
                    out,
                    "{family}_count{} {}",
                    render_labels(&base_labels),
                    hist.total
                );
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

fn err(line_no: usize, msg: impl Into<String>) -> String {
    format!("line {line_no}: {}", msg.into())
}

fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parses a `{k="v",...}` block starting at byte offset `at` (which
/// must point at `{`). Returns the labels and the offset just past `}`.
fn parse_label_block(s: &str, at: usize) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = s.as_bytes();
    if bytes.get(at) != Some(&b'{') {
        return Err("expected `{`".into());
    }
    let mut labels = Vec::new();
    let mut i = at + 1;
    loop {
        if bytes.get(i) == Some(&b'}') {
            return Ok((labels, i + 1));
        }
        // Label name.
        let name_start = i;
        while i < s.len() && bytes[i] != b'=' {
            i += 1;
        }
        let name = &s[name_start..i];
        if !is_valid_name(name) {
            return Err(format!("invalid label name `{name}`"));
        }
        i += 1; // consume '='
        if bytes.get(i) != Some(&b'"') {
            return Err(format!("label `{name}`: expected opening quote"));
        }
        i += 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err(format!("label `{name}`: unterminated value")),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("label `{name}`: bad escape")),
                    }
                    i += 2;
                }
                Some(_) => {
                    // Multi-byte chars are copied verbatim.
                    let c = s[i..].chars().next().expect("char boundary");
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((name.to_owned(), value));
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {}
            _ => return Err(format!("label `{name}`: expected `,` or `}}`")),
        }
    }
}

fn parse_value(token: &str) -> Result<f64, String> {
    match token {
        "NaN" => Ok(f64::NAN),
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => token
            .parse::<f64>()
            .map_err(|_| format!("invalid value `{token}`")),
    }
}

/// True when `sample` is a legal sample name for family `family` of
/// kind `kind`.
fn sample_matches(family: &str, kind: MetricKind, sample: &str) -> bool {
    match kind {
        MetricKind::Gauge => sample == family,
        MetricKind::Counter => sample
            .strip_prefix(family)
            .is_some_and(|rest| rest == "_total"),
        MetricKind::Histogram => sample
            .strip_prefix(family)
            .is_some_and(|rest| matches!(rest, "_bucket" | "_sum" | "_count")),
    }
}

/// Strictly parses OpenMetrics text produced by [`render_openmetrics`]
/// (or scraped from the `/metrics` endpoint).
///
/// Enforced: every sample belongs to a previously declared `# TYPE`
/// family with a kind-legal suffix; counters never go without `_total`;
/// label blocks are well-formed with valid escapes; values parse
/// (including `NaN`/`±Inf`); a family is never re-declared (samples of
/// one family are contiguous); the document ends with `# EOF` and
/// nothing follows it. Errors carry the offending line number.
pub fn parse_openmetrics(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    let mut pending_help: Option<(String, String)> = None;
    let mut seen: Vec<String> = Vec::new();
    let mut current: Option<MetricFamily> = None;
    let mut eof = false;

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if eof {
            return Err(err(line_no, "content after `# EOF`"));
        }
        if line.is_empty() {
            return Err(err(line_no, "blank line in exposition"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                eof = true;
                continue;
            }
            if let Some(decl) = rest.strip_prefix("HELP ") {
                let (name, text) = decl
                    .split_once(' ')
                    .ok_or_else(|| err(line_no, "malformed `# HELP`"))?;
                if !is_valid_name(name) {
                    return Err(err(line_no, format!("invalid family name `{name}`")));
                }
                if pending_help.is_some() {
                    return Err(err(line_no, "`# HELP` not followed by `# TYPE`"));
                }
                pending_help = Some((name.to_owned(), text.to_owned()));
                continue;
            }
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let (name, kind) = decl
                    .split_once(' ')
                    .ok_or_else(|| err(line_no, "malformed `# TYPE`"))?;
                if !is_valid_name(name) {
                    return Err(err(line_no, format!("invalid family name `{name}`")));
                }
                let kind = match kind {
                    "counter" => MetricKind::Counter,
                    "gauge" => MetricKind::Gauge,
                    "histogram" => MetricKind::Histogram,
                    other => return Err(err(line_no, format!("unknown type `{other}`"))),
                };
                if seen.iter().any(|s| s == name) {
                    return Err(err(line_no, format!("family `{name}` declared twice")));
                }
                let help = match pending_help.take() {
                    Some((help_name, text)) => {
                        if help_name != name {
                            return Err(err(
                                line_no,
                                format!("`# HELP {help_name}` precedes `# TYPE {name}`"),
                            ));
                        }
                        Some(text)
                    }
                    None => None,
                };
                if let Some(done) = current.take() {
                    exposition.families.push(done);
                }
                seen.push(name.to_owned());
                current = Some(MetricFamily {
                    name: name.to_owned(),
                    kind,
                    help,
                    samples: Vec::new(),
                });
                continue;
            }
            return Err(err(line_no, "unknown comment directive"));
        }
        if line.starts_with('#') {
            return Err(err(line_no, "malformed comment"));
        }
        if pending_help.is_some() {
            return Err(err(line_no, "`# HELP` not followed by `# TYPE`"));
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| err(line_no, "sample missing value"))?;
        let name = &line[..name_end];
        if !is_valid_name(name) {
            return Err(err(line_no, format!("invalid sample name `{name}`")));
        }
        let (labels, after_labels) = if line.as_bytes()[name_end] == b'{' {
            parse_label_block(line, name_end).map_err(|e| err(line_no, e))?
        } else {
            (Vec::new(), name_end)
        };
        let rest = line[after_labels..]
            .strip_prefix(' ')
            .ok_or_else(|| err(line_no, "expected space before value"))?;
        // OpenMetrics allows an optional timestamp token; we forbid it —
        // the exposition is tick-indexed, not wall-clock-indexed.
        if rest.contains(' ') {
            return Err(err(line_no, "unexpected token after value"));
        }
        let value = parse_value(rest).map_err(|e| err(line_no, e))?;

        let family = current
            .as_mut()
            .ok_or_else(|| err(line_no, format!("sample `{name}` before any `# TYPE`")))?;
        if !sample_matches(&family.name, family.kind, name) {
            return Err(err(
                line_no,
                format!(
                    "sample `{name}` does not belong to {} family `{}`",
                    family.kind.as_str(),
                    family.name
                ),
            ));
        }
        if family.kind == MetricKind::Histogram
            && name.ends_with("_bucket")
            && !labels.iter().any(|(k, _)| k == "le")
        {
            return Err(err(line_no, format!("`{name}` missing `le` label")));
        }
        family.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }

    if pending_help.is_some() {
        return Err("`# HELP` not followed by `# TYPE` at end of input".into());
    }
    if !eof {
        return Err("missing `# EOF` terminator".into());
    }
    if let Some(done) = current.take() {
        exposition.families.push(done);
    }
    Ok(exposition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::registry::MetricsRegistry;

    fn render(registry: &MetricsRegistry) -> String {
        render_openmetrics(&registry.snapshot(), &[("engine_ticks", "Ticks executed.")])
    }

    #[test]
    fn renders_and_parses_counters_gauges_series() {
        let registry = MetricsRegistry::new();
        registry.counter("engine.ticks").add(7);
        registry.gauge("cluster.mean_air_c").set(23.5);
        let s = registry.series("cluster.melted_fraction", 8);
        s.push(1, 0.25);
        s.push(2, 0.5);
        let text = render(&registry);
        assert!(text.contains("# HELP engine_ticks Ticks executed.\n"));
        assert!(text.contains("# TYPE engine_ticks counter\n"));
        assert!(text.contains("engine_ticks_total 7\n"));
        assert!(text.contains("cluster_mean_air_c 23.5\n"));
        // Series expose their newest sample as a gauge.
        assert!(text.contains("cluster_melted_fraction 0.5\n"));
        assert!(text.ends_with("# EOF\n"));

        let parsed = parse_openmetrics(&text).expect("round trip");
        let fam = parsed.family("engine_ticks").unwrap();
        assert_eq!(fam.kind, MetricKind::Counter);
        assert_eq!(fam.help.as_deref(), Some("Ticks executed."));
        assert_eq!(fam.samples[0].value, 7.0);
    }

    #[test]
    fn labelled_instances_fold_into_one_family_sorted() {
        let registry = MetricsRegistry::new();
        registry.gauge("zone.temp_c{zone=\"10\"}").set(24.0);
        registry.gauge("zone.temp_c{zone=\"2\"}").set(22.0);
        let text = render(&registry);
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE zone_temp_c"))
            .collect();
        assert_eq!(type_lines, vec!["# TYPE zone_temp_c gauge"]);
        let a = text.find("zone_temp_c{zone=\"10\"} 24").unwrap();
        let b = text.find("zone_temp_c{zone=\"2\"} 22").unwrap();
        // Lexicographic label order is stable (not numeric, but fixed).
        assert!(a < b);
        parse_openmetrics(&text).expect("labelled round trip");
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let registry = MetricsRegistry::new();
        registry
            .gauge("probe.value{path=\"a\\\\b\\nc\\\"d\"}")
            .set(1.0);
        let text = render(&registry);
        assert!(text.contains("probe_value{path=\"a\\\\b\\nc\\\"d\"} 1\n"));
        let parsed = parse_openmetrics(&text).unwrap();
        let sample = &parsed.family("probe_value").unwrap().samples[0];
        assert_eq!(sample.labels[0].1, "a\\b\nc\"d");
    }

    #[test]
    fn non_finite_gauges_round_trip() {
        let registry = MetricsRegistry::new();
        registry.gauge("g.nan").set(f64::NAN);
        registry.gauge("g.pinf").set(f64::INFINITY);
        registry.gauge("g.ninf").set(f64::NEG_INFINITY);
        let text = render(&registry);
        assert!(text.contains("g_nan NaN\n"));
        assert!(text.contains("g_pinf +Inf\n"));
        assert!(text.contains("g_ninf -Inf\n"));
        let parsed = parse_openmetrics(&text).unwrap();
        assert!(parsed.family("g_nan").unwrap().samples[0].value.is_nan());
        assert_eq!(
            parsed.family("g_pinf").unwrap().samples[0].value,
            f64::INFINITY
        );
        assert_eq!(
            parsed.family("g_ninf").unwrap().samples[0].value,
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat.ticks", &[1.0, 2.0]);
        h.record(0.5);
        h.record(1.5);
        h.record(99.0);
        let text = render(&registry);
        assert!(text.contains("# TYPE lat_ticks histogram\n"));
        assert!(text.contains("lat_ticks_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_ticks_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("lat_ticks_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ticks_sum 101\n"));
        assert!(text.contains("lat_ticks_count 3\n"));
        parse_openmetrics(&text).expect("histogram round trip");
    }

    #[test]
    fn empty_histogram_is_valid_exposition() {
        let registry = MetricsRegistry::new();
        registry.histogram("empty.hist", &[0.5]);
        let text = render(&registry);
        assert!(text.contains("empty_hist_bucket{le=\"0.5\"} 0\n"));
        assert!(text.contains("empty_hist_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_hist_sum 0\n"));
        assert!(text.contains("empty_hist_count 0\n"));
        let parsed = parse_openmetrics(&text).unwrap();
        let fam = parsed.family("empty_hist").unwrap();
        assert_eq!(fam.kind, MetricKind::Histogram);
        assert_eq!(fam.samples.len(), 4);
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let registry = MetricsRegistry::new();
            registry.counter("b.count").add(2);
            registry.counter("a.count").add(1);
            registry.gauge("zone.temp_c{zone=\"1\"}").set(21.0);
            registry.gauge("zone.temp_c{zone=\"0\"}").set(20.0);
            registry.histogram("h.lat", &[1.0]).record(0.1);
            render(&registry)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        // Missing EOF.
        assert!(parse_openmetrics("# TYPE a gauge\na 1\n")
            .unwrap_err()
            .contains("# EOF"));
        // Sample before TYPE.
        assert!(parse_openmetrics("a 1\n# EOF\n")
            .unwrap_err()
            .contains("before any"));
        // Counter sample without _total.
        let text = "# TYPE c counter\nc 1\n# EOF\n";
        assert!(parse_openmetrics(text)
            .unwrap_err()
            .contains("does not belong"));
        // Family declared twice (non-contiguous samples).
        let text = "# TYPE a gauge\na 1\n# TYPE a gauge\na 2\n# EOF\n";
        assert!(parse_openmetrics(text)
            .unwrap_err()
            .contains("declared twice"));
        // Content after EOF.
        let text = "# TYPE a gauge\na 1\n# EOF\na 2\n";
        assert!(parse_openmetrics(text)
            .unwrap_err()
            .contains("after `# EOF`"));
        // Bad escape in a label value.
        let text = "# TYPE a gauge\na{x=\"\\q\"} 1\n# EOF\n";
        assert!(parse_openmetrics(text).unwrap_err().contains("bad escape"));
        // Unparseable value.
        let text = "# TYPE a gauge\na one\n# EOF\n";
        assert!(parse_openmetrics(text)
            .unwrap_err()
            .contains("invalid value"));
        // HELP without TYPE.
        let text = "# HELP a text\na 1\n# EOF\n";
        assert!(parse_openmetrics(text)
            .unwrap_err()
            .contains("not followed by `# TYPE`"));
        // Bucket without le.
        let text = "# TYPE h histogram\nh_bucket 1\n# EOF\n";
        assert!(parse_openmetrics(text)
            .unwrap_err()
            .contains("missing `le`"));
    }

    #[test]
    fn help_text_escapes_newlines_and_backslashes() {
        let snapshot = {
            let registry = MetricsRegistry::new();
            registry.gauge("g.x").set(1.0);
            registry.snapshot()
        };
        let text = render_openmetrics(&snapshot, &[("g_x", "line one\nback\\slash")]);
        assert!(text.contains("# HELP g_x line one\\nback\\\\slash\n"));
        let parsed = parse_openmetrics(&text).unwrap();
        // HELP text parses back as the escaped (on-the-wire) form; the
        // parser does not unescape help, only label values.
        assert!(parsed.family("g_x").unwrap().help.is_some());
    }

    #[test]
    fn sum_of_empty_histogram_via_snapshot_struct() {
        // Direct HistogramSnapshot path (no registry) also renders.
        let h = Histogram::with_buckets(vec![1.0]);
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert("solo.h".into(), h.snapshot());
        let text = render_openmetrics(&snap, &[]);
        parse_openmetrics(&text).expect("standalone histogram");
    }
}
