//! The lock-free-in-the-hot-path metrics registry.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::series::{Series, SeriesSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle.
///
/// Cloning is cheap (`Arc`); incrementing is one relaxed atomic add —
/// no lock is ever taken on the record path.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stores `f64` bits in an atomic, so
/// writes are lock-free and tear-free).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
    Series(Arc<Series>),
}

/// A named collection of counters, gauges, and histograms.
///
/// Registration (`counter(name)`, `gauge(name)`, `histogram(name, ..)`)
/// takes a mutex and possibly allocates — do it once, outside the hot
/// loop — and returns a cheap handle whose record operations are all
/// single relaxed atomics. Clones of the registry share the same
/// metrics, so the component that wires up a simulation can keep a clone
/// and read everything back after the run.
///
/// # Examples
///
/// ```
/// use vmt_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let placements = registry.counter("scheduler.placements");
/// placements.inc();
/// placements.add(2);
/// assert_eq!(registry.snapshot().counters["scheduler.placements"], 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<HashMap<String, Metric>>>,
}

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: HashMap<String, u64>,
    /// Gauge values by name.
    pub gauges: HashMap<String, f64>,
    /// Histogram states by name.
    pub histograms: HashMap<String, HistogramSnapshot>,
    /// Time-series windows by name. Streams written before series
    /// existed lack this key; it deserializes as an empty map (missing
    /// map fields default to empty), so old streams keep validating.
    pub series: HashMap<String, SeriesSnapshot>,
}

/// One metric's value, as returned by [`MetricsRegistry::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's current state.
    Histogram(HistogramSnapshot),
    /// A time series' current window.
    Series(SeriesSnapshot),
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` (inclusive upper bucket bounds) on first use. Later
    /// callers get the existing histogram; the bounds argument is only
    /// used on creation.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or if `bounds` is invalid (see [`Histogram::with_buckets`]).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics.entry(name.to_owned()).or_insert_with(|| {
            Metric::Histogram(Arc::new(Histogram::with_buckets(bounds.to_vec())))
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Returns the time series registered under `name`, creating it
    /// with room for `capacity` samples on first use. Later callers get
    /// the existing series; the capacity argument is only used on
    /// creation.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn series(&self, name: &str, capacity: usize) -> Arc<Series> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Series(Arc::new(Series::with_capacity(capacity))))
        {
            Metric::Series(s) => s.clone(),
            _ => panic!("metric `{name}` is not a series"),
        }
    }

    /// Reads one metric by name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics.get(name).map(|m| match m {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            Metric::Series(s) => MetricValue::Series(s.snapshot()),
        })
    }

    /// Copies out every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
                Metric::Series(s) => {
                    snap.series.insert(name.clone(), s.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_across_clones() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.clone().counter("x");
        a.inc();
        b.add(10);
        assert_eq!(registry.get("x"), Some(MetricValue::Counter(11)));
    }

    #[test]
    fn gauge_last_value_wins() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("temp");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_registration_reuses_bounds() {
        let registry = MetricsRegistry::new();
        let h1 = registry.histogram("lat", &[1.0, 2.0]);
        h1.record(0.5);
        // Second registration ignores the new bounds and returns the
        // same histogram.
        let h2 = registry.histogram("lat", &[100.0]);
        h2.record(1.5);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["lat"].counts, vec![1, 1, 0]);
    }

    #[test]
    fn series_registration_shares_ring_and_snapshots() {
        let registry = MetricsRegistry::new();
        let s1 = registry.series("cluster.mean_air_c", 4);
        s1.push(1, 21.0);
        // Second registration ignores the new capacity and returns the
        // same ring.
        let s2 = registry.series("cluster.mean_air_c", 99);
        s2.push(2, 22.0);
        let snap = registry.snapshot();
        let window = &snap.series["cluster.mean_air_c"];
        assert_eq!(window.values, vec![21.0, 22.0]);
        assert_eq!(window.capacity, 4);
        assert_eq!(window.last_tick, 2);
    }

    #[test]
    fn old_schema_snapshot_without_series_key_still_deserializes() {
        // A snapshot serialized before the series field existed.
        let json = r#"{"counters":{"n":1},"gauges":{},"histograms":{}}"#;
        let back: MetricsSnapshot = serde_json::from_str(json).unwrap();
        assert_eq!(back.counters["n"], 1);
        assert!(back.series.is_empty());
        // And the new schema round-trips.
        let registry = MetricsRegistry::new();
        registry.series("s", 4).push(1, 2.0);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    #[should_panic(expected = "is not a series")]
    fn series_kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.series("x", 8);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("x");
        registry.counter("x");
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("n");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
