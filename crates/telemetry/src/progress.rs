//! Live run progress (ticks/s, ETA, jobs in flight, % wax melted).

use std::time::Instant;

/// One rendered progress sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressFrame {
    /// Ticks completed.
    pub tick: u64,
    /// Planned tick count.
    pub total_ticks: u64,
    /// Fraction done, 0..=1.
    pub fraction: f64,
    /// Smoothed-over-the-whole-run throughput.
    pub ticks_per_s: f64,
    /// Estimated seconds to completion (0 when throughput is unknown).
    pub eta_s: f64,
    /// Jobs currently running.
    pub jobs_in_flight: u64,
    /// Fraction of servers reporting melted wax, 0..=1.
    pub melted_fraction: f64,
}

impl ProgressFrame {
    /// Computes a frame from raw observations. Split out from the meter
    /// so it is testable without waiting on a wall clock.
    pub fn compute(
        tick: u64,
        total_ticks: u64,
        elapsed_s: f64,
        jobs_in_flight: u64,
        melted_fraction: f64,
    ) -> Self {
        // Guard every division: the first observation can arrive at
        // tick 0 and/or with a zero (or even non-finite) elapsed clock,
        // and none of those may put a NaN or inf into a rendered frame.
        let ticks_per_s = if elapsed_s > 0.0 && elapsed_s.is_finite() && tick > 0 {
            tick as f64 / elapsed_s
        } else {
            0.0
        };
        let remaining = total_ticks.saturating_sub(tick);
        let eta_s = if ticks_per_s > 0.0 {
            remaining as f64 / ticks_per_s
        } else {
            0.0
        };
        let fraction = if total_ticks == 0 {
            1.0
        } else {
            (tick as f64 / total_ticks as f64).clamp(0.0, 1.0)
        };
        let melted_fraction = if melted_fraction.is_finite() {
            melted_fraction.clamp(0.0, 1.0)
        } else {
            0.0
        };
        Self {
            tick,
            total_ticks,
            fraction,
            ticks_per_s,
            eta_s,
            jobs_in_flight,
            melted_fraction,
        }
    }

    /// One-line rendering, suitable for `\r`-overwriting on stderr:
    /// `[ 42%] tick 1210/2880 | 1930 ticks/s | ETA 1s | 512 jobs | 12.5% melted`.
    pub fn render(&self) -> String {
        format!(
            "[{:3.0}%] tick {}/{} | {:.0} ticks/s | ETA {} | {} jobs | {:.1}% melted",
            self.fraction * 100.0,
            self.tick,
            self.total_ticks,
            self.ticks_per_s,
            render_eta(self.eta_s),
            self.jobs_in_flight,
            self.melted_fraction * 100.0,
        )
    }
}

fn render_eta(eta_s: f64) -> String {
    // A non-finite ETA (throughput glitch, clock anomaly) must not
    // render as a garbage number — `NaN as u64` is 0 and `inf as u64`
    // saturates, both of which would silently lie.
    if !eta_s.is_finite() || eta_s < 0.0 {
        return "?".to_owned();
    }
    let s = eta_s.round() as u64;
    if s >= 86_400 {
        // Multi-day ETAs (a 1M-server run on one core) render as
        // `Nd HH:MM:SS` instead of wrapping into a huge hour count.
        format!(
            "{}d {:02}:{:02}:{:02}",
            s / 86_400,
            (s % 86_400) / 3600,
            (s % 3600) / 60,
            s % 60
        )
    } else if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// Throttles progress sampling to one frame per `every_ticks`.
///
/// The wall clock starts at construction, so build the meter right
/// before the run loop.
#[derive(Debug)]
pub struct ProgressMeter {
    total_ticks: u64,
    every_ticks: u64,
    started: Instant,
}

impl ProgressMeter {
    /// Creates a meter for a run of `total_ticks`, sampling every
    /// `every_ticks` (clamped to at least 1).
    pub fn new(total_ticks: u64, every_ticks: u64) -> Self {
        Self {
            total_ticks,
            every_ticks: every_ticks.max(1),
            started: Instant::now(),
        }
    }

    /// Returns a frame when `tick` lands on the sampling cadence (or is
    /// the final tick), `None` otherwise.
    pub fn observe(
        &self,
        tick: u64,
        jobs_in_flight: u64,
        melted_fraction: f64,
    ) -> Option<ProgressFrame> {
        if !tick.is_multiple_of(self.every_ticks) && tick != self.total_ticks {
            return None;
        }
        Some(ProgressFrame::compute(
            tick,
            self.total_ticks,
            self.started.elapsed().as_secs_f64(),
            jobs_in_flight,
            melted_fraction,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_math() {
        let f = ProgressFrame::compute(100, 400, 2.0, 7, 0.25);
        assert_eq!(f.ticks_per_s, 50.0);
        assert_eq!(f.eta_s, 6.0);
        assert_eq!(f.fraction, 0.25);
        let line = f.render();
        assert!(line.contains("tick 100/400"), "got: {line}");
        assert!(line.contains("50 ticks/s"), "got: {line}");
        assert!(line.contains("ETA 6s"), "got: {line}");
        assert!(line.contains("7 jobs"), "got: {line}");
        assert!(line.contains("25.0% melted"), "got: {line}");
    }

    #[test]
    fn zero_elapsed_and_zero_total_do_not_divide_by_zero() {
        let f = ProgressFrame::compute(0, 0, 0.0, 0, 0.0);
        assert_eq!(f.ticks_per_s, 0.0);
        assert_eq!(f.eta_s, 0.0);
        assert_eq!(f.fraction, 1.0);
    }

    /// The first observation — tick 0, any elapsed-clock value, even a
    /// degenerate melted fraction — must render without NaN or inf.
    #[test]
    fn first_observation_edge_cases_render_clean() {
        for elapsed in [0.0, 1e-9, 2.0, f64::NAN, f64::INFINITY] {
            for melted in [0.0, f64::NAN, -1.0, 2.0] {
                let f = ProgressFrame::compute(0, 2880, elapsed, 0, melted);
                assert!(f.ticks_per_s.is_finite(), "elapsed {elapsed}");
                assert!(f.eta_s.is_finite(), "elapsed {elapsed}");
                assert!(f.fraction.is_finite());
                assert!(f.melted_fraction.is_finite());
                let line = f.render();
                assert!(!line.contains("NaN"), "got: {line}");
                assert!(!line.contains("inf"), "got: {line}");
            }
        }
        // tick 0 with positive elapsed must not claim a 0-tick ETA of 0
        // by dividing 0/elapsed into a rate.
        let f = ProgressFrame::compute(0, 100, 5.0, 0, 0.0);
        assert_eq!(f.ticks_per_s, 0.0);
        assert_eq!(f.eta_s, 0.0);
    }

    /// A meter over a zero-tick run yields a well-formed 100% frame.
    #[test]
    fn zero_tick_run_meter_is_safe() {
        let meter = ProgressMeter::new(0, 60);
        let frame = meter.observe(0, 0, 0.0).expect("tick 0 samples");
        assert_eq!(frame.fraction, 1.0);
        let line = frame.render();
        assert!(line.contains("[100%]"), "got: {line}");
        assert!(!line.contains("NaN"), "got: {line}");
    }

    /// A tick past the planned total (horizon rounding) stays clamped.
    #[test]
    fn overshoot_tick_clamps_fraction() {
        let f = ProgressFrame::compute(101, 100, 1.0, 0, 0.5);
        assert_eq!(f.fraction, 1.0);
        assert_eq!(f.eta_s, 0.0);
    }

    #[test]
    fn eta_renders_minutes_and_hours() {
        assert_eq!(render_eta(59.0), "59s");
        assert_eq!(render_eta(61.0), "1m01s");
        assert_eq!(render_eta(3725.0), "1h02m");
    }

    /// Multi-day ETAs render `Nd HH:MM:SS` instead of a raw hour wrap.
    #[test]
    fn eta_renders_multi_day() {
        assert_eq!(render_eta(86_400.0), "1d 00:00:00");
        // 2 days, 3 hours, 4 minutes, 5 seconds.
        assert_eq!(
            render_eta((2 * 86_400 + 3 * 3600 + 4 * 60 + 5) as f64),
            "2d 03:04:05"
        );
        // One second under a day still renders in hours.
        assert_eq!(render_eta(86_399.0), "23h59m");
        assert_eq!(render_eta(90.0 * 86_400.0), "90d 00:00:00");
    }

    /// Non-finite or negative ETAs render a placeholder, never a
    /// saturated or zeroed number.
    #[test]
    fn eta_guards_non_finite() {
        assert_eq!(render_eta(f64::NAN), "?");
        assert_eq!(render_eta(f64::INFINITY), "?");
        assert_eq!(render_eta(f64::NEG_INFINITY), "?");
        assert_eq!(render_eta(-1.0), "?");
    }

    #[test]
    fn meter_throttles_to_cadence() {
        let meter = ProgressMeter::new(10, 4);
        assert!(meter.observe(1, 0, 0.0).is_none());
        assert!(meter.observe(4, 0, 0.0).is_some());
        assert!(meter.observe(9, 0, 0.0).is_none());
        // The final tick always yields a frame.
        assert!(meter.observe(10, 0, 0.0).is_some());
    }
}
