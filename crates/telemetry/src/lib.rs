//! Zero-cost-when-disabled observability for the VMT simulator stack.
//!
//! The simulator's hot loop places millions of jobs per simulated day;
//! an observability layer must therefore cost *nothing* when it is off
//! and stay off the allocator and out of locks when it is on. This crate
//! provides four pieces, each usable on its own:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms. Handles are `Arc`-backed atomics: recording is a single
//!   relaxed atomic op (lock-free), registration (cold path) takes a
//!   mutex once. The registry is cloneable; every clone shares the same
//!   metrics, so a bench harness can keep a handle and read what the
//!   engine recorded after a run.
//! * [`PhaseProfiler`] — wall-clock attribution of each simulation tick
//!   to its phases (departures, scheduler refresh, placement, physics
//!   sweep, shard fold, metric recording). Accumulates plain `u64`
//!   nanoseconds owned by the engine thread — no atomics, no allocation —
//!   and folds into a serializable [`PhaseBreakdown`].
//! * [`Event`] + [`EventSink`] — a structured JSONL event stream (run
//!   config, periodic snapshots, melt and hot-group transitions, final
//!   summary) behind a buffered, shareable writer.
//! * [`ProgressMeter`] + [`render_report`] — live progress on stderr
//!   (ticks/s, ETA, jobs in flight, % wax melted) and a human-readable
//!   end-of-run report.
//!
//! The engine holds the whole stack as an `Option<TelemetryConfig>`:
//! when `None` (the default), not a single `Instant::now()` is taken and
//! the simulation loop is byte-for-byte the uninstrumented one, which is
//! what keeps the differential tests bit-identical and the disabled-path
//! overhead at zero.

mod config;
mod events;
mod histogram;
mod phases;
mod progress;
mod registry;
mod report;
mod sink;

pub use config::{SummaryHandle, TelemetryConfig};
pub use events::{
    Event, HotGroupEvent, HotGroupTransition, MeltEvent, MeltTransition, RunConfigEvent,
    SchedulerCounters, SnapshotEvent, SummaryEvent, SCHEMA_VERSION,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use phases::{PhaseBreakdown, PhaseProfiler, TickPhase};
pub use progress::{ProgressFrame, ProgressMeter};
pub use registry::{Counter, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use report::render_report;
pub use sink::{validate_stream, EventSink, SharedBuffer, StreamSummary};
