//! Zero-cost-when-disabled observability for the VMT simulator stack.
//!
//! The simulator's hot loop places millions of jobs per simulated day;
//! an observability layer must therefore cost *nothing* when it is off
//! and stay off the allocator and out of locks when it is on. This crate
//! provides four pieces, each usable on its own:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms. Handles are `Arc`-backed atomics: recording is a single
//!   relaxed atomic op (lock-free), registration (cold path) takes a
//!   mutex once. The registry is cloneable; every clone shares the same
//!   metrics, so a bench harness can keep a handle and read what the
//!   engine recorded after a run.
//! * [`PhaseProfiler`] — wall-clock attribution of each simulation tick
//!   to its phases (departures, scheduler refresh, placement, physics
//!   sweep, shard fold, metric recording). Accumulates plain `u64`
//!   nanoseconds owned by the engine thread — no atomics, no allocation —
//!   and folds into a serializable [`PhaseBreakdown`].
//! * [`Event`] + [`EventSink`] — a structured JSONL event stream (run
//!   config, periodic snapshots, melt and hot-group transitions, final
//!   summary) behind a buffered, shareable writer.
//! * [`ProgressMeter`] + [`render_report`] — live progress on stderr
//!   (ticks/s, ETA, jobs in flight, % wax melted) and a human-readable
//!   end-of-run report.
//!
//! The engine holds the whole stack as an `Option<TelemetryConfig>`:
//! when `None` (the default), not a single `Instant::now()` is taken and
//! the simulation loop is byte-for-byte the uninstrumented one, which is
//! what keeps the differential tests bit-identical and the disabled-path
//! overhead at zero.
//!
//! Three further pieces serve incident forensics:
//!
//! * [`FlightRecorder`] — a fixed-capacity ring of compact binary
//!   [`TraceRecord`]s (placements, departures, melt crossings, resizes,
//!   spills) written on the engine thread with no allocation after
//!   construction, dumped to JSONL on demand or when a watchdog fires.
//! * [`WatchdogSet`] — declarative anomaly detectors (thermal red-line,
//!   wax stall, QoS spill storm, hot-group thrash) evaluated from state
//!   the tick already computes; each firing emits an [`AnomalyEvent`].
//! * [`replay`] — the placement-trace schema and state digests behind
//!   the record/replay harness: a recorded decision stream re-drives the
//!   simulation bit-identically, and per-tick digests bisect divergence.
//!
//! And four pieces form the live observability layer:
//!
//! * [`Series`] — fixed-capacity, tick-indexed ring-buffer time series
//!   with windowed min/mean/max downsampling, registered through the
//!   [`MetricsRegistry`] like any other metric. Tick-indexed, never
//!   wall-clock, so enabled runs stay bit-identical to disabled runs.
//! * [`render_openmetrics`] / [`parse_openmetrics`] — the OpenMetrics
//!   text-exposition writer over a [`MetricsSnapshot`] and the strict
//!   parser that tests and `check-metrics` feed scraped text back
//!   through.
//! * [`MetricsPublisher`] + [`MetricsServer`] — a dependency-free
//!   `GET /metrics` scrape endpoint: the engine swaps freshly rendered
//!   expositions into the publisher; a `std::net::TcpListener` thread
//!   serves them without ever touching the tick loop.
//! * [`Dashboard`] — a live ANSI terminal dashboard (sparklines over
//!   series windows) that degrades to plain progress lines on dumb
//!   terminals.
//!
//! Finally, deterministic span tracing:
//!
//! * [`Tracer`] — a ring of [`SpanRecord`]s (per-tick and per-phase
//!   spans, per-zone CRAC spans, sampled placement/decision instants,
//!   anomaly instants) identified by `(tick, seq)` — never wall clock
//!   — so an enabled trace is bit-identical across thread counts and
//!   under record/replay, modulo the wall-clock duration fields.
//! * [`render_trace`] / [`parse_trace`] / [`validate_trace`] — the
//!   Chrome trace-event JSON exporter (Perfetto / `chrome://tracing`
//!   loadable) and the strict parser/validator behind `check-trace`
//!   and `explain`.

mod config;
mod dashboard;
mod events;
mod histogram;
mod openmetrics;
mod phases;
mod progress;
mod recorder;
mod registry;
pub mod replay;
mod report;
mod series;
mod server;
mod sink;
mod traceevent;
mod tracer;
mod watchdog;

pub use config::{FlightConfig, SummaryHandle, TelemetryConfig};
pub use dashboard::{
    clamp_spark_width, render_dashboard, render_dashboard_width, sparkline, Dashboard,
    DashboardMode, DashboardRow, SPARK_WIDTH,
};
pub use events::{
    Event, HotGroupEvent, HotGroupTransition, MeltEvent, MeltTransition, RunConfigEvent,
    SchedulerCounters, SnapshotEvent, SummaryEvent, SCHEMA_VERSION,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use openmetrics::{
    parse_openmetrics, render_openmetrics, Exposition, MetricFamily, MetricKind, Sample,
};
pub use phases::{PhaseBreakdown, PhaseProfiler, TickPhase};
pub use progress::{ProgressFrame, ProgressMeter};
pub use recorder::{
    validate_dump, DumpHeader, DumpSummary, FlightRecorder, TraceRecord, DUMP_SCHEMA_VERSION,
};
pub use registry::{Counter, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use report::render_report;
pub use series::{Series, SeriesBucket, SeriesSnapshot, SharedSeries};
pub use server::{MetricsPublication, MetricsPublisher, MetricsServer, METRICS_CONTENT_TYPE};
pub use sink::{validate_stream, EventSink, SharedBuffer, StreamSummary};
pub use traceevent::{
    parse_trace, render_trace, validate_trace, ChromeEvent, ChromeTrace, TraceError, TraceStats,
    LANE_ANOMALIES, LANE_PLACEMENT, LANE_TICK, LANE_ZONES,
};
pub use tracer::{
    SpanCandidate, SpanRecord, TraceBuffer, TraceSpec, Tracer, TracerHandle, DECISION_TOP_K,
    DEFAULT_TRACE_CAPACITY,
};
pub use watchdog::{AnomalyEvent, TickState, WatchdogKind, WatchdogSet, WatchdogSpec};
