//! Deterministic span tracing.
//!
//! A [`Tracer`] is a fixed-capacity ring of [`SpanRecord`]s written on
//! the engine thread. Every record is identified by `(tick, seq)` —
//! the simulation tick it belongs to and a per-tick sequence number
//! assigned in emission order — and *never* by wall clock or
//! randomness. All emission happens on the engine thread in tick
//! order, so an enabled trace is bit-identical across worker-thread
//! counts and under record/replay; the only nondeterministic content
//! is the wall-clock `dur_ns` duration fields, which
//! [`SpanRecord::without_durations`] strips for comparison.
//!
//! Durations piggyback on timestamps the engine already takes: the
//! per-phase spans reuse the profiler's lap reads and the tick span
//! reuses the tick clock's total, so arming the tracer adds *zero*
//! new `Instant` reads on the phase path (per-zone spans, which have
//! no pre-existing clock, are the one exception — and they are only
//! timed while tracing is on). With the tracer disabled nothing here
//! runs at all: the disabled path takes zero extra timestamps.
//!
//! Placement-level records (placement instants and policy decision
//! events) are *sampled*: a [`TraceSpec`] selects every `n`-th job by
//! id and/or an explicit job-id list, so a 100k-server trace stays
//! bounded while still letting `explain` reconstruct the full decision
//! chain for any sampled job.

use crate::phases::TickPhase;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default ring capacity, in records.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// How many tournament candidates (winner first) a decision event
/// carries: the presumptive winner plus two runner-ups. Each extra
/// candidate costs a lazy-tournament expansion against cold cache
/// lines on the per-sampled-job hot path, so the count is kept at the
/// smallest value that still shows *why* the winner beat the field.
pub const DECISION_TOP_K: usize = 3;

/// One tournament candidate inside a [`SpanRecord::Decision`]: a
/// server id and its balancer key (projected temperature plus
/// penalties) at the moment of the decision, before the placement
/// bumped it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpanCandidate {
    /// Server id.
    pub server: u32,
    /// Tournament key; lower wins.
    pub key: f64,
}

/// One trace record. Identified by `(tick, seq)`; `dur_ns` fields are
/// the only wall-clock content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpanRecord {
    /// Complete span covering one whole engine tick. Emitted last in
    /// its tick, so it carries the tick's highest `seq`.
    Tick {
        /// 1-based simulation tick.
        tick: u64,
        /// Per-tick emission sequence.
        seq: u32,
        /// Wall-clock tick duration (excluded from determinism
        /// comparisons).
        dur_ns: u64,
    },
    /// Complete span for one [`TickPhase`] within a tick, fed from the
    /// profiler's existing lap reads.
    Phase {
        /// 1-based simulation tick.
        tick: u64,
        /// Per-tick emission sequence.
        seq: u32,
        /// The phase this span times.
        phase: TickPhase,
        /// Wall-clock phase duration (excluded from determinism
        /// comparisons).
        dur_ns: u64,
    },
    /// Per-zone physics/CRAC span on zoned runs: the time integrating
    /// one zone's thermal node, plus the zone state it landed on.
    Zone {
        /// 1-based simulation tick.
        tick: u64,
        /// Per-tick emission sequence.
        seq: u32,
        /// Zone index.
        zone: u32,
        /// Wall-clock zone-step duration (excluded from determinism
        /// comparisons).
        dur_ns: u64,
        /// Zone air temperature after the step, °C.
        temp_c: f64,
        /// CRAC duty fraction this step, 0..=1.
        duty: f64,
    },
    /// Instant: one sampled job was placed (or dropped).
    Placement {
        /// 1-based simulation tick.
        tick: u64,
        /// Per-tick emission sequence.
        seq: u32,
        /// Job id.
        job: u64,
        /// Job kind index (into the workload's kind table).
        kind: u8,
        /// Chosen server, `None` if the job was dropped.
        server: Option<u32>,
        /// Zone of the chosen server on zoned runs.
        zone: Option<u32>,
        /// Job service time, in ticks.
        duration_ticks: u32,
    },
    /// Instant: the policy's decision detail for one sampled job —
    /// which ladder rung won, the winning tournament key, and the
    /// top-k runner-up candidates with their keys.
    Decision {
        /// 1-based simulation tick.
        tick: u64,
        /// Per-tick emission sequence.
        seq: u32,
        /// Job id.
        job: u64,
        /// Which placement-ladder rung produced the decision (e.g.
        /// `"hot-balancer"`, `"keep-warm"`, `"cold-any"`).
        rung: String,
        /// Chosen server, `None` if every rung failed.
        chosen: Option<u32>,
        /// The chosen server's tournament key, when a balancer rung
        /// won; `None` on priority/cursor rungs.
        winning_key: Option<f64>,
        /// Up to [`DECISION_TOP_K`] tournament candidates, best first,
        /// captured before the placement bumped the winner.
        candidates: Vec<SpanCandidate>,
    },
    /// Instant: a watchdog anomaly, linked to the enclosing tick span
    /// by its `tick`.
    Anomaly {
        /// 1-based simulation tick.
        tick: u64,
        /// Per-tick emission sequence.
        seq: u32,
        /// Watchdog kind name (e.g. `"ThermalViolation"`).
        watchdog: String,
        /// Offending server, when the watchdog names one.
        server: Option<u64>,
        /// The observed value that tripped the threshold.
        value: f64,
    },
}

impl SpanRecord {
    /// The simulation tick this record belongs to.
    pub fn tick(&self) -> u64 {
        match *self {
            SpanRecord::Tick { tick, .. }
            | SpanRecord::Phase { tick, .. }
            | SpanRecord::Zone { tick, .. }
            | SpanRecord::Placement { tick, .. }
            | SpanRecord::Decision { tick, .. }
            | SpanRecord::Anomaly { tick, .. } => tick,
        }
    }

    /// The record's per-tick sequence number.
    pub fn seq(&self) -> u32 {
        match *self {
            SpanRecord::Tick { seq, .. }
            | SpanRecord::Phase { seq, .. }
            | SpanRecord::Zone { seq, .. }
            | SpanRecord::Placement { seq, .. }
            | SpanRecord::Decision { seq, .. }
            | SpanRecord::Anomaly { seq, .. } => seq,
        }
    }

    /// A copy with every wall-clock duration field zeroed — the
    /// deterministic projection the trace tests compare bit-for-bit
    /// across thread counts and record/replay.
    pub fn without_durations(&self) -> SpanRecord {
        let mut record = self.clone();
        match &mut record {
            SpanRecord::Tick { dur_ns, .. }
            | SpanRecord::Phase { dur_ns, .. }
            | SpanRecord::Zone { dur_ns, .. } => *dur_ns = 0,
            SpanRecord::Placement { .. }
            | SpanRecord::Decision { .. }
            | SpanRecord::Anomaly { .. } => {}
        }
        record
    }
}

/// Tracer arming parameters: ring size and the placement sampling
/// policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Ring capacity in records (clamped to at least 16).
    pub capacity: usize,
    /// Sample every `n`-th job by id (`job % n == 0`). `1` samples
    /// every job; `0` disables modulo sampling (only `jobs` entries
    /// are sampled). Phase, zone, tick, and anomaly records are never
    /// sampled away — only placement/decision records are.
    pub sample_every: u64,
    /// Explicit job ids to sample regardless of `sample_every`.
    pub jobs: Vec<u64>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        Self {
            capacity: DEFAULT_TRACE_CAPACITY,
            sample_every: 1,
            jobs: Vec::new(),
        }
    }
}

/// The finished trace: records in emission order plus how many the
/// ring dropped (oldest first) to stay within capacity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceBuffer {
    /// Records in `(tick, seq)` order.
    pub records: Vec<SpanRecord>,
    /// Records overwritten by ring wrap-around.
    pub dropped: u64,
}

impl TraceBuffer {
    /// The records with wall-clock durations zeroed, for determinism
    /// comparisons.
    pub fn without_durations(&self) -> Vec<SpanRecord> {
        self.records
            .iter()
            .map(SpanRecord::without_durations)
            .collect()
    }
}

/// A shared slot the engine deposits the finished [`TraceBuffer`]
/// into at the end of a run (the tracing analogue of
/// [`SummaryHandle`](crate::SummaryHandle)).
#[derive(Debug, Clone, Default)]
pub struct TracerHandle(Arc<Mutex<Option<TraceBuffer>>>);

impl TracerHandle {
    /// Creates an empty handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores the finished trace (called by the engine).
    pub fn set(&self, buffer: TraceBuffer) {
        *self.0.lock().expect("tracer handle poisoned") = Some(buffer);
    }

    /// Takes the trace out, if a run has finished.
    pub fn take(&self) -> Option<TraceBuffer> {
        self.0.lock().expect("tracer handle poisoned").take()
    }

    /// Copies the trace out without consuming it.
    pub fn get(&self) -> Option<TraceBuffer> {
        self.0.lock().expect("tracer handle poisoned").clone()
    }
}

/// Ring-buffered span tracer, written by the engine thread only.
///
/// All ids derive from `(tick, seq)`: [`Tracer::begin_tick`] resets
/// the sequence counter, every emitted record takes the next value.
/// Capacity overflow drops the *oldest* records (and counts them), so
/// a bounded ring always keeps the most recent window of the run.
#[derive(Debug)]
pub struct Tracer {
    ring: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
    sample_every: u64,
    /// Sorted, deduplicated explicit sample list.
    jobs: Vec<u64>,
    tick: u64,
    seq: u32,
}

impl Tracer {
    /// Builds a tracer from its arming spec.
    pub fn new(spec: &TraceSpec) -> Self {
        let capacity = spec.capacity.max(16);
        let mut jobs = spec.jobs.clone();
        jobs.sort_unstable();
        jobs.dedup();
        Self {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            sample_every: spec.sample_every,
            jobs,
            tick: 0,
            seq: 0,
        }
    }

    /// Starts a new tick: subsequent records belong to `tick` and
    /// number from zero.
    pub fn begin_tick(&mut self, tick: u64) {
        self.tick = tick;
        self.seq = 0;
    }

    /// Whether placement/decision records for `job` should be emitted
    /// under the sampling policy.
    #[inline]
    pub fn wants_job(&self, job: u64) -> bool {
        (self.sample_every != 0 && job.is_multiple_of(self.sample_every))
            || (!self.jobs.is_empty() && self.jobs.binary_search(&job).is_ok())
    }

    /// Offsets of the sampled jobs within a batch of `count`
    /// *consecutive* job ids starting at `first_id` — the shape the
    /// engine produces (ids are assigned serially per batch). Computed
    /// arithmetically, so the cost is O(samples), not O(batch): at
    /// cluster scale a tick places tens of thousands of jobs and a
    /// per-job `wants_job` scan is itself a measurable overhead.
    /// Offsets are strictly increasing; equivalent to filtering
    /// `0..count` through [`Tracer::wants_job`].
    pub fn sampled_offsets(&self, first_id: u64, count: usize) -> Vec<usize> {
        let mut out = Vec::new();
        if count == 0 {
            return out;
        }
        let end = first_id.saturating_add(count as u64);
        if self.sample_every != 0 {
            let n = self.sample_every;
            let rem = first_id % n;
            let mut id = match rem {
                0 => Some(first_id),
                _ => first_id.checked_add(n - rem),
            };
            while let Some(at) = id.filter(|&at| at < end) {
                out.push((at - first_id) as usize);
                id = at.checked_add(n);
            }
        }
        if !self.jobs.is_empty() {
            let lo = self.jobs.partition_point(|&j| j < first_id);
            let hi = self.jobs.partition_point(|&j| j < end);
            let modulo_only = out.len();
            for &job in &self.jobs[lo..hi] {
                // Skip ids the modulo pass already emitted.
                if self.sample_every == 0 || job % self.sample_every != 0 {
                    out.push((job - first_id) as usize);
                }
            }
            if out.len() > modulo_only {
                out.sort_unstable();
            }
        }
        out
    }

    fn next_seq(&mut self) -> u32 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    fn push(&mut self, record: SpanRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// Emits a phase span fed from the profiler's lap read.
    pub fn phase(&mut self, phase: TickPhase, dur_ns: u64) {
        let (tick, seq) = (self.tick, self.next_seq());
        self.push(SpanRecord::Phase {
            tick,
            seq,
            phase,
            dur_ns,
        });
    }

    /// Emits a per-zone physics/CRAC span.
    pub fn zone(&mut self, zone: u32, dur_ns: u64, temp_c: f64, duty: f64) {
        let (tick, seq) = (self.tick, self.next_seq());
        self.push(SpanRecord::Zone {
            tick,
            seq,
            zone,
            dur_ns,
            temp_c,
            duty,
        });
    }

    /// Emits a placement instant for a sampled job.
    pub fn placement(
        &mut self,
        job: u64,
        kind: u8,
        server: Option<u32>,
        zone: Option<u32>,
        duration_ticks: u32,
    ) {
        let (tick, seq) = (self.tick, self.next_seq());
        self.push(SpanRecord::Placement {
            tick,
            seq,
            job,
            kind,
            server,
            zone,
            duration_ticks,
        });
    }

    /// Emits a policy decision event for a sampled job.
    pub fn decision(
        &mut self,
        job: u64,
        rung: &str,
        chosen: Option<u32>,
        winning_key: Option<f64>,
        candidates: Vec<SpanCandidate>,
    ) {
        let (tick, seq) = (self.tick, self.next_seq());
        self.push(SpanRecord::Decision {
            tick,
            seq,
            job,
            rung: rung.to_string(),
            chosen,
            winning_key,
            candidates,
        });
    }

    /// Emits a watchdog anomaly instant linked to the current tick.
    pub fn anomaly(&mut self, watchdog: &str, server: Option<u64>, value: f64) {
        let (tick, seq) = (self.tick, self.next_seq());
        self.push(SpanRecord::Anomaly {
            tick,
            seq,
            watchdog: watchdog.to_string(),
            server,
            value,
        });
    }

    /// Closes the current tick with its whole-tick span (reusing the
    /// tick clock's total — no new timestamp).
    pub fn end_tick(&mut self, dur_ns: u64) {
        let (tick, seq) = (self.tick, self.next_seq());
        self.push(SpanRecord::Tick { tick, seq, dur_ns });
    }

    /// Records currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded (or everything was
    /// dropped).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many records the ring has overwritten.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the tracer into its finished buffer.
    pub fn into_buffer(self) -> TraceBuffer {
        TraceBuffer {
            records: self.ring.into_iter().collect(),
            dropped: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(capacity: usize) -> TraceSpec {
        TraceSpec {
            capacity,
            ..TraceSpec::default()
        }
    }

    #[test]
    fn seq_resets_per_tick_and_orders_records() {
        let mut tracer = Tracer::new(&spec(64));
        tracer.begin_tick(1);
        tracer.phase(TickPhase::Inlet, 10);
        tracer.placement(7, 0, Some(3), None, 5);
        tracer.end_tick(100);
        tracer.begin_tick(2);
        tracer.phase(TickPhase::Inlet, 20);
        tracer.end_tick(200);
        let buffer = tracer.into_buffer();
        let ids: Vec<(u64, u32)> = buffer.records.iter().map(|r| (r.tick(), r.seq())).collect();
        assert_eq!(ids, vec![(1, 0), (1, 1), (1, 2), (2, 0), (2, 1)]);
        // (tick, seq) pairs are strictly increasing in emission order.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut tracer = Tracer::new(&spec(16));
        tracer.begin_tick(1);
        for _ in 0..20 {
            tracer.phase(TickPhase::Record, 1);
        }
        assert_eq!(tracer.len(), 16);
        assert_eq!(tracer.dropped(), 4);
        let buffer = tracer.into_buffer();
        assert_eq!(buffer.records.len(), 16);
        assert_eq!(buffer.dropped, 4);
        // The survivors are the newest records: seqs 4..20.
        assert_eq!(buffer.records[0].seq(), 4);
        assert_eq!(buffer.records[15].seq(), 19);
    }

    #[test]
    fn capacity_clamped_to_minimum() {
        let tracer = Tracer::new(&spec(0));
        assert_eq!(tracer.capacity, 16);
    }

    #[test]
    fn sampling_modulo_and_explicit_jobs() {
        let mut spec = spec(64);
        spec.sample_every = 100;
        spec.jobs = vec![7, 7, 3];
        let tracer = Tracer::new(&spec);
        assert!(tracer.wants_job(0));
        assert!(tracer.wants_job(200));
        assert!(!tracer.wants_job(42));
        assert!(tracer.wants_job(7));
        assert!(tracer.wants_job(3));
        // sample_every == 0 restricts to the explicit list.
        let only_jobs = TraceSpec {
            sample_every: 0,
            jobs: vec![9],
            ..TraceSpec::default()
        };
        let tracer = Tracer::new(&only_jobs);
        assert!(tracer.wants_job(9));
        assert!(!tracer.wants_job(0));
        // Default spec samples everything.
        let tracer = Tracer::new(&TraceSpec::default());
        assert!(tracer.wants_job(12345));
    }

    #[test]
    fn sampled_offsets_match_per_job_wants() {
        let cases = [
            (100, vec![]),
            (0, vec![3, 11]),
            (7, vec![7, 15, 16]),
            (1, vec![]),
            (3, vec![0, 2, 1000]),
        ];
        for (sample_every, jobs) in cases {
            let tracer = Tracer::new(&TraceSpec {
                capacity: 16,
                sample_every,
                jobs: jobs.clone(),
            });
            for (first_id, count) in [(0u64, 0usize), (0, 1), (0, 250), (95, 40), (13, 7)] {
                let offsets = tracer.sampled_offsets(first_id, count);
                let expected: Vec<usize> = (0..count)
                    .filter(|&i| tracer.wants_job(first_id + i as u64))
                    .collect();
                assert_eq!(
                    offsets, expected,
                    "sample_every={sample_every} jobs={jobs:?} first={first_id} count={count}"
                );
            }
        }
    }

    #[test]
    fn without_durations_strips_only_wall_clock() {
        let mut tracer = Tracer::new(&spec(64));
        tracer.begin_tick(3);
        tracer.phase(TickPhase::Physics, 555);
        tracer.zone(2, 777, 23.5, 0.5);
        tracer.decision(
            9,
            "hot-balancer",
            Some(4),
            Some(22.25),
            vec![SpanCandidate {
                server: 4,
                key: 22.25,
            }],
        );
        tracer.anomaly("ThermalViolation", Some(4), 31.0);
        tracer.end_tick(9999);
        let buffer = tracer.into_buffer();
        let stripped = buffer.without_durations();
        assert_eq!(stripped.len(), buffer.records.len());
        for record in &stripped {
            match record {
                SpanRecord::Tick { dur_ns, .. }
                | SpanRecord::Phase { dur_ns, .. }
                | SpanRecord::Zone { dur_ns, .. } => assert_eq!(*dur_ns, 0),
                _ => {}
            }
        }
        // Typed payloads survive the strip.
        match &stripped[1] {
            SpanRecord::Zone { temp_c, duty, .. } => {
                assert_eq!(*temp_c, 23.5);
                assert_eq!(*duty, 0.5);
            }
            other => panic!("expected zone record, got {other:?}"),
        }
        match &stripped[2] {
            SpanRecord::Decision {
                rung,
                winning_key,
                candidates,
                ..
            } => {
                assert_eq!(rung, "hot-balancer");
                assert_eq!(*winning_key, Some(22.25));
                assert_eq!(candidates.len(), 1);
            }
            other => panic!("expected decision record, got {other:?}"),
        }
    }

    #[test]
    fn records_serde_round_trip() {
        let mut tracer = Tracer::new(&spec(64));
        tracer.begin_tick(1);
        tracer.phase(TickPhase::Placement, 42);
        tracer.placement(100, 1, None, Some(3), 7);
        tracer.end_tick(50);
        let buffer = tracer.into_buffer();
        let json = serde_json::to_string(&buffer).expect("serializes");
        let back: TraceBuffer = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, buffer);
    }

    #[test]
    fn tracer_handle_shares_across_clones() {
        let handle = TracerHandle::new();
        let reader = handle.clone();
        assert!(reader.get().is_none());
        handle.set(TraceBuffer::default());
        assert!(reader.get().is_some());
        assert!(reader.take().is_some());
        assert!(handle.get().is_none());
    }
}
