//! Chrome trace-event JSON export for [`TraceBuffer`]s.
//!
//! [`render_trace`] lays the deterministic span records out on a
//! synthesized timeline and writes the Chrome trace-event format that
//! Perfetto and `chrome://tracing` load directly. Timestamps are
//! *virtual*: tick `t` starts where tick `t-1`'s wall-clock span
//! ended, phases run back-to-back from their tick's start, and
//! instants land at `tick_start + seq` nanoseconds — so the layout is
//! a pure function of the records and needs no wall clock of its own.
//!
//! [`parse_trace`] and [`validate_trace`] are the strict in-repo
//! consumers: the CLI's `check-trace` feeds exported files back
//! through them, and `explain` walks the parsed events to reconstruct
//! a job's decision chain. Both serialization directions are
//! hand-rolled over the [`serde::Value`] data model — the trace-event
//! format's camelCase keys and omitted-when-absent fields don't fit
//! the derive, and the strict parse rejects unknown fields outright.
//! Validation then checks structural invariants — legal event phases,
//! finite non-negative times, proper span nesting per thread lane,
//! unique `(tick, seq)` ids — not just JSON well-formedness.

use crate::tracer::{SpanRecord, TraceBuffer};
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Thread lane carrying the tick and phase spans.
pub const LANE_TICK: u32 = 1;
/// Thread lane carrying per-zone physics/CRAC spans.
pub const LANE_ZONES: u32 = 2;
/// Thread lane carrying placement and decision instants.
pub const LANE_PLACEMENT: u32 = 3;
/// Thread lane carrying watchdog anomaly instants.
pub const LANE_ANOMALIES: u32 = 4;

/// One event in the Chrome trace-event format. Only the fields the
/// renderer emits are admitted — unknown fields fail the strict parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Display name (phase name, `"tick"`, watchdog kind, ...).
    pub name: String,
    /// Category: `"tick"`, `"phase"`, `"zone"`, `"placement"`,
    /// `"decision"`, `"anomaly"`, or `"__metadata"`.
    pub cat: String,
    /// Event phase: `"X"` (complete span), `"i"` (instant), or `"M"`
    /// (metadata).
    pub ph: String,
    /// Timestamp in microseconds on the synthesized timeline.
    pub ts: f64,
    /// Span duration in microseconds (`"X"` events only; omitted from
    /// the JSON otherwise).
    pub dur: Option<f64>,
    /// Process id (always 1).
    pub pid: u32,
    /// Thread lane (see the `LANE_*` constants).
    pub tid: u32,
    /// Instant scope (`"t"`; `"i"` events only, omitted otherwise).
    pub s: Option<String>,
    /// Typed payload: the record's fields, including its `(tick,
    /// seq)` id. `Value::Null` when absent.
    pub args: Value,
}

impl Serialize for ChromeEvent {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("cat".to_string(), Value::Str(self.cat.clone())),
            ("ph".to_string(), Value::Str(self.ph.clone())),
            ("ts".to_string(), Value::F64(self.ts)),
        ];
        if let Some(dur) = self.dur {
            pairs.push(("dur".to_string(), Value::F64(dur)));
        }
        pairs.push(("pid".to_string(), Value::U64(self.pid as u64)));
        pairs.push(("tid".to_string(), Value::U64(self.tid as u64)));
        if let Some(s) = &self.s {
            pairs.push(("s".to_string(), Value::Str(s.clone())));
        }
        if !matches!(self.args, Value::Null) {
            pairs.push(("args".to_string(), self.args.clone()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for ChromeEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let Value::Object(pairs) = v else {
            return Err(Error::msg("trace event is not an object"));
        };
        let mut event = ChromeEvent {
            name: String::new(),
            cat: String::new(),
            ph: String::new(),
            ts: f64::NAN,
            dur: None,
            pid: 0,
            tid: 0,
            s: None,
            args: Value::Null,
        };
        let mut seen = [false; 4];
        for (key, value) in pairs {
            match key.as_str() {
                "name" => {
                    event.name = string_field(value, "name")?;
                    seen[0] = true;
                }
                "cat" => {
                    event.cat = string_field(value, "cat")?;
                    seen[1] = true;
                }
                "ph" => {
                    event.ph = string_field(value, "ph")?;
                    seen[2] = true;
                }
                "ts" => {
                    event.ts = value_f64(value)
                        .ok_or_else(|| Error::msg("trace event ts is not a number"))?;
                    seen[3] = true;
                }
                "dur" => {
                    event.dur = Some(
                        value_f64(value)
                            .ok_or_else(|| Error::msg("trace event dur is not a number"))?,
                    );
                }
                "pid" => {
                    event.pid = small_int(value, "pid")?;
                }
                "tid" => {
                    event.tid = small_int(value, "tid")?;
                }
                "s" => {
                    event.s = Some(string_field(value, "s")?);
                }
                "args" => {
                    event.args = value.clone();
                }
                other => {
                    return Err(Error::msg(format!(
                        "trace event has unknown field `{other}`"
                    )));
                }
            }
        }
        for (ok, field) in seen.iter().zip(["name", "cat", "ph", "ts"]) {
            if !ok {
                return Err(Error::msg(format!("trace event missing field `{field}`")));
            }
        }
        Ok(event)
    }
}

/// A parsed Chrome trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// The events, in emission order (JSON key `traceEvents`).
    pub trace_events: Vec<ChromeEvent>,
    /// Display hint for viewers (JSON key `displayTimeUnit`).
    pub display_time_unit: String,
    /// Exporter metadata: schema version and ring-drop count (JSON key
    /// `otherData`).
    pub other_data: Value,
}

impl Serialize for ChromeTrace {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "traceEvents".to_string(),
                Value::Array(self.trace_events.iter().map(Serialize::to_value).collect()),
            ),
            (
                "displayTimeUnit".to_string(),
                Value::Str(self.display_time_unit.clone()),
            ),
            ("otherData".to_string(), self.other_data.clone()),
        ])
    }
}

impl Deserialize for ChromeTrace {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let Value::Object(pairs) = v else {
            return Err(Error::msg("trace is not an object"));
        };
        let mut events: Option<Vec<ChromeEvent>> = None;
        let mut unit = "ms".to_string();
        let mut other = Value::Null;
        for (key, value) in pairs {
            match key.as_str() {
                "traceEvents" => {
                    let Value::Array(items) = value else {
                        return Err(Error::msg("traceEvents is not an array"));
                    };
                    events = Some(
                        items
                            .iter()
                            .map(ChromeEvent::from_value)
                            .collect::<Result<_, _>>()?,
                    );
                }
                "displayTimeUnit" => {
                    unit = string_field(value, "displayTimeUnit")?;
                }
                "otherData" => {
                    other = value.clone();
                }
                unknown => {
                    return Err(Error::msg(format!("trace has unknown field `{unknown}`")));
                }
            }
        }
        Ok(ChromeTrace {
            trace_events: events.ok_or_else(|| Error::msg("trace missing traceEvents"))?,
            display_time_unit: unit,
            other_data: other,
        })
    }
}

/// Summary statistics `validate_trace` returns (and `check-trace`
/// prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Distinct simulation ticks with a tick span.
    pub ticks: usize,
    /// Complete (`"X"`) spans.
    pub spans: usize,
    /// Phase spans.
    pub phases: usize,
    /// Per-zone spans.
    pub zones: usize,
    /// Placement instants.
    pub placements: usize,
    /// Decision instants.
    pub decisions: usize,
    /// Anomaly instants.
    pub anomalies: usize,
    /// Records the exporter's ring dropped before rendering.
    pub dropped: u64,
}

/// Why a trace failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Human-readable reason, with an event index where applicable.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceError {}

fn err(message: impl Into<String>) -> TraceError {
    TraceError {
        message: message.into(),
    }
}

fn string_field(value: &Value, field: &str) -> Result<String, Error> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(Error::msg(format!("trace field `{field}` is not a string"))),
    }
}

fn small_int(value: &Value, field: &str) -> Result<u32, Error> {
    value_u64(value)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| Error::msg(format!("trace field `{field}` is not a small integer")))
}

/// Numeric accessor over the vendored data model: accepts the integer
/// shapes the JSON parser produces.
fn value_u64(value: &Value) -> Option<u64> {
    match value {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn value_f64(value: &Value) -> Option<f64> {
    match value {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn opt_u32(value: Option<u32>) -> Value {
    match value {
        Some(n) => Value::U64(n as u64),
        None => Value::Null,
    }
}

fn meta(name: &str, tid: u32, label: &str) -> ChromeEvent {
    ChromeEvent {
        name: name.to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0.0,
        dur: None,
        pid: 1,
        tid,
        s: None,
        args: obj(vec![("name", Value::Str(label.to_string()))]),
    }
}

fn span(name: String, cat: &str, tid: u32, ts_ns: u64, dur_ns: u64, args: Value) -> ChromeEvent {
    ChromeEvent {
        name,
        cat: cat.to_string(),
        ph: "X".to_string(),
        ts: us(ts_ns),
        dur: Some(us(dur_ns)),
        pid: 1,
        tid,
        s: None,
        args,
    }
}

fn instant(name: String, cat: &str, tid: u32, ts_ns: u64, args: Value) -> ChromeEvent {
    ChromeEvent {
        name,
        cat: cat.to_string(),
        ph: "i".to_string(),
        ts: us(ts_ns),
        dur: None,
        pid: 1,
        tid,
        s: Some("t".to_string()),
        args,
    }
}

fn id_args(tick: u64, seq: u32) -> Value {
    obj(vec![
        ("tick", Value::U64(tick)),
        ("seq", Value::U64(seq as u64)),
    ])
}

/// Renders a finished trace as Chrome trace-event JSON.
///
/// The timeline is synthesized deterministically from the records (see
/// the module docs); the only wall-clock content is the span `dur`
/// values, which come from the records' `dur_ns` fields.
pub fn render_trace(buffer: &TraceBuffer) -> String {
    let mut events = vec![
        meta("process_name", LANE_TICK, "vmt-sim"),
        meta("thread_name", LANE_TICK, "tick"),
        meta("thread_name", LANE_ZONES, "zones"),
        meta("thread_name", LANE_PLACEMENT, "placement"),
        meta("thread_name", LANE_ANOMALIES, "anomalies"),
    ];
    // Group records by tick (they arrive in tick order) and lay each
    // tick out from a running cursor.
    let mut cursor_ns: u64 = 0;
    let mut index = 0;
    while index < buffer.records.len() {
        let tick = buffer.records[index].tick();
        let mut end = index;
        while end < buffer.records.len() && buffer.records[end].tick() == tick {
            end += 1;
        }
        let group = &buffer.records[index..end];
        // The tick span (pushed last in its group) sets the group's
        // width; a group whose tick record was dropped by the ring
        // falls back to the sum of its phase spans.
        let tick_dur_ns = group
            .iter()
            .find_map(|r| match r {
                SpanRecord::Tick { dur_ns, .. } => Some(*dur_ns),
                _ => None,
            })
            .unwrap_or_else(|| {
                group
                    .iter()
                    .map(|r| match r {
                        SpanRecord::Phase { dur_ns, .. } => *dur_ns,
                        _ => 0,
                    })
                    .sum()
            });
        // The tick span must be *emitted* first: the nesting validator
        // — like trace viewers — expects an enclosing span to open
        // before its children.
        if let Some(SpanRecord::Tick { tick, seq, dur_ns }) =
            group.iter().find(|r| matches!(r, SpanRecord::Tick { .. }))
        {
            events.push(span(
                "tick".to_string(),
                "tick",
                LANE_TICK,
                cursor_ns,
                *dur_ns,
                id_args(*tick, *seq),
            ));
        }
        let mut phase_cursor_ns = cursor_ns;
        let mut zone_cursor_ns = cursor_ns;
        for record in group {
            match record {
                SpanRecord::Tick { .. } => {}
                SpanRecord::Phase {
                    tick,
                    seq,
                    phase,
                    dur_ns,
                } => {
                    events.push(span(
                        phase.name().to_string(),
                        "phase",
                        LANE_TICK,
                        phase_cursor_ns,
                        *dur_ns,
                        id_args(*tick, *seq),
                    ));
                    phase_cursor_ns += dur_ns;
                }
                SpanRecord::Zone {
                    tick,
                    seq,
                    zone,
                    dur_ns,
                    temp_c,
                    duty,
                } => {
                    events.push(span(
                        format!("zone {zone}"),
                        "zone",
                        LANE_ZONES,
                        zone_cursor_ns,
                        *dur_ns,
                        obj(vec![
                            ("tick", Value::U64(*tick)),
                            ("seq", Value::U64(*seq as u64)),
                            ("zone", Value::U64(*zone as u64)),
                            ("temp_c", Value::F64(*temp_c)),
                            ("duty", Value::F64(*duty)),
                        ]),
                    ));
                    zone_cursor_ns += dur_ns;
                }
                SpanRecord::Placement {
                    tick,
                    seq,
                    job,
                    kind,
                    server,
                    zone,
                    duration_ticks,
                } => {
                    events.push(instant(
                        "placement".to_string(),
                        "placement",
                        LANE_PLACEMENT,
                        cursor_ns + *seq as u64,
                        obj(vec![
                            ("tick", Value::U64(*tick)),
                            ("seq", Value::U64(*seq as u64)),
                            ("job", Value::U64(*job)),
                            ("kind", Value::U64(*kind as u64)),
                            ("server", opt_u32(*server)),
                            ("zone", opt_u32(*zone)),
                            ("duration_ticks", Value::U64(*duration_ticks as u64)),
                        ]),
                    ));
                }
                SpanRecord::Decision {
                    tick,
                    seq,
                    job,
                    rung,
                    chosen,
                    winning_key,
                    candidates,
                } => {
                    let candidates: Vec<Value> = candidates
                        .iter()
                        .map(|c| {
                            obj(vec![
                                ("server", Value::U64(c.server as u64)),
                                ("key", Value::F64(c.key)),
                            ])
                        })
                        .collect();
                    events.push(instant(
                        "decision".to_string(),
                        "decision",
                        LANE_PLACEMENT,
                        cursor_ns + *seq as u64,
                        obj(vec![
                            ("tick", Value::U64(*tick)),
                            ("seq", Value::U64(*seq as u64)),
                            ("job", Value::U64(*job)),
                            ("rung", Value::Str(rung.clone())),
                            ("chosen", opt_u32(*chosen)),
                            (
                                "winning_key",
                                winning_key.map(Value::F64).unwrap_or(Value::Null),
                            ),
                            ("candidates", Value::Array(candidates)),
                        ]),
                    ));
                }
                SpanRecord::Anomaly {
                    tick,
                    seq,
                    watchdog,
                    server,
                    value,
                } => {
                    events.push(instant(
                        watchdog.clone(),
                        "anomaly",
                        LANE_ANOMALIES,
                        cursor_ns + *seq as u64,
                        obj(vec![
                            ("tick", Value::U64(*tick)),
                            ("seq", Value::U64(*seq as u64)),
                            ("watchdog", Value::Str(watchdog.clone())),
                            ("server", server.map(Value::U64).unwrap_or(Value::Null)),
                            ("value", Value::F64(*value)),
                        ]),
                    ));
                }
            }
        }
        // Advance past this tick; a floor of 1 µs keeps zero-duration
        // ticks (possible on a coarse clock) from stacking instants of
        // successive ticks on the same timestamp.
        cursor_ns += tick_dur_ns.max(1000);
        index = end;
    }
    let trace = ChromeTrace {
        trace_events: events,
        display_time_unit: "ms".to_string(),
        other_data: obj(vec![
            ("exporter", Value::Str("vmt-telemetry".to_string())),
            ("schema", Value::U64(1)),
            ("dropped", Value::U64(buffer.dropped)),
        ]),
    };
    serde_json::to_string_pretty(&trace).expect("trace serializes") + "\n"
}

/// Strictly parses Chrome trace-event JSON produced by
/// [`render_trace`]. Unknown fields and malformed shapes are errors.
pub fn parse_trace(text: &str) -> Result<ChromeTrace, TraceError> {
    serde_json::from_str(text).map_err(|e| err(format!("trace does not parse: {e}")))
}

fn require_u64(args: &Value, field: &str, at: usize) -> Result<u64, TraceError> {
    args.get_field(field).and_then(value_u64).ok_or_else(|| {
        err(format!(
            "event {at}: args.{field} missing or not an integer"
        ))
    })
}

fn require_finite(args: &Value, field: &str, at: usize) -> Result<f64, TraceError> {
    let value = args
        .get_field(field)
        .and_then(value_f64)
        .ok_or_else(|| err(format!("event {at}: args.{field} missing or not a number")))?;
    if !value.is_finite() {
        return Err(err(format!("event {at}: args.{field} is not finite")));
    }
    Ok(value)
}

/// Validates a rendered trace end to end and returns its statistics.
///
/// Beyond parsing, this checks the renderer's structural contract:
/// every event has a legal `ph` for its shape, timestamps are finite
/// and non-negative, complete spans nest properly within each thread
/// lane (a span starts at or after its predecessor ends, or lies
/// entirely inside it), payloads carry the fields their category
/// promises, and `(tick, seq)` ids are unique.
pub fn validate_trace(text: &str) -> Result<TraceStats, TraceError> {
    let trace = parse_trace(text)?;
    let mut stats = TraceStats {
        events: trace.trace_events.len(),
        dropped: trace
            .other_data
            .get_field("dropped")
            .and_then(value_u64)
            .unwrap_or(0),
        ..TraceStats::default()
    };
    let mut ids: HashSet<(u64, u64)> = HashSet::new();
    let mut ticks: HashSet<u64> = HashSet::new();
    // Per-lane stack of open span extents for the nesting check.
    let mut open: HashMap<u32, Vec<(f64, f64)>> = HashMap::new();
    for (at, event) in trace.trace_events.iter().enumerate() {
        if !event.ts.is_finite() || event.ts < 0.0 {
            return Err(err(format!("event {at}: ts must be finite and >= 0")));
        }
        if event.pid != 1 {
            return Err(err(format!("event {at}: unexpected pid {}", event.pid)));
        }
        match event.ph.as_str() {
            "M" => {
                if event.cat != "__metadata" {
                    return Err(err(format!("event {at}: metadata must use cat __metadata")));
                }
                continue;
            }
            "X" => {
                let dur = event
                    .dur
                    .ok_or_else(|| err(format!("event {at}: complete span without dur")))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(err(format!("event {at}: dur must be finite and >= 0")));
                }
                stats.spans += 1;
                // Nesting: pop closed spans, then require the new span
                // to fit inside whatever is still open on this lane.
                // Work in integral nanoseconds: the renderer lays spans
                // out on an integer ns timeline and divides by 1000 for
                // the µs `ts`/`dur` fields, so scaling back and rounding
                // recovers that timeline exactly — summing the µs floats
                // directly would accumulate ulp error and misreport
                // back-to-back spans as partial overlaps.
                let ts_ns = (event.ts * 1000.0).round();
                let end_ns = ts_ns + (dur * 1000.0).round();
                let lane = open.entry(event.tid).or_default();
                while lane.last().is_some_and(|&(_, lane_end)| ts_ns >= lane_end) {
                    lane.pop();
                }
                if let Some(&(start, lane_end)) = lane.last() {
                    if ts_ns < start || end_ns > lane_end {
                        return Err(err(format!(
                            "event {at}: span [{ts_ns}, {end_ns}] ns partially overlaps open span [{start}, {lane_end}] ns on lane {}",
                            event.tid
                        )));
                    }
                }
                lane.push((ts_ns, end_ns));
            }
            "i" => {
                if event.s.as_deref() != Some("t") {
                    return Err(err(format!("event {at}: instant without thread scope")));
                }
            }
            other => return Err(err(format!("event {at}: unsupported ph {other:?}"))),
        }
        let tick = require_u64(&event.args, "tick", at)?;
        let seq = require_u64(&event.args, "seq", at)?;
        if !ids.insert((tick, seq)) {
            return Err(err(format!(
                "event {at}: duplicate id (tick {tick}, seq {seq})"
            )));
        }
        match event.cat.as_str() {
            "tick" => {
                if event.ph != "X" {
                    return Err(err(format!("event {at}: tick events must be spans")));
                }
                if !ticks.insert(tick) {
                    return Err(err(format!(
                        "event {at}: duplicate tick span for tick {tick}"
                    )));
                }
            }
            "phase" => {
                if event.ph != "X" {
                    return Err(err(format!("event {at}: phase events must be spans")));
                }
                stats.phases += 1;
            }
            "zone" => {
                if event.ph != "X" {
                    return Err(err(format!("event {at}: zone events must be spans")));
                }
                require_u64(&event.args, "zone", at)?;
                require_finite(&event.args, "temp_c", at)?;
                require_finite(&event.args, "duty", at)?;
                stats.zones += 1;
            }
            "placement" => {
                if event.ph != "i" {
                    return Err(err(format!(
                        "event {at}: placement events must be instants"
                    )));
                }
                require_u64(&event.args, "job", at)?;
                require_u64(&event.args, "duration_ticks", at)?;
                stats.placements += 1;
            }
            "decision" => {
                if event.ph != "i" {
                    return Err(err(format!("event {at}: decision events must be instants")));
                }
                require_u64(&event.args, "job", at)?;
                let rung = event
                    .args
                    .get_field("rung")
                    .and_then(|v| match v {
                        Value::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .ok_or_else(|| err(format!("event {at}: args.rung missing")))?;
                if rung.is_empty() {
                    return Err(err(format!("event {at}: args.rung is empty")));
                }
                let candidates = event
                    .args
                    .get_field("candidates")
                    .and_then(|v| match v {
                        Value::Array(items) => Some(items),
                        _ => None,
                    })
                    .ok_or_else(|| err(format!("event {at}: args.candidates missing")))?;
                for (c, candidate) in candidates.iter().enumerate() {
                    if candidate.get_field("server").and_then(value_u64).is_none() {
                        return Err(err(format!("event {at}: candidate {c} has no server")));
                    }
                    let key = candidate
                        .get_field("key")
                        .and_then(value_f64)
                        .ok_or_else(|| err(format!("event {at}: candidate {c} has no key")))?;
                    if !key.is_finite() {
                        return Err(err(format!("event {at}: candidate {c} key is not finite")));
                    }
                }
                stats.decisions += 1;
            }
            "anomaly" => {
                if event.ph != "i" {
                    return Err(err(format!("event {at}: anomaly events must be instants")));
                }
                require_finite(&event.args, "value", at)?;
                stats.anomalies += 1;
            }
            other => return Err(err(format!("event {at}: unknown category {other:?}"))),
        }
    }
    stats.ticks = ticks.len();
    if stats.spans + stats.placements + stats.decisions + stats.anomalies == 0 {
        return Err(err("trace contains no events"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::TickPhase;
    use crate::tracer::{SpanCandidate, TraceSpec, Tracer};

    fn sample_buffer() -> TraceBuffer {
        let mut tracer = Tracer::new(&TraceSpec::default());
        for tick in 1..=3u64 {
            tracer.begin_tick(tick);
            tracer.phase(TickPhase::Inlet, 100);
            tracer.phase(TickPhase::Placement, 2_000);
            tracer.decision(
                tick * 10,
                "hot-balancer",
                Some(5),
                Some(23.0),
                vec![
                    SpanCandidate {
                        server: 5,
                        key: 23.0,
                    },
                    SpanCandidate {
                        server: 9,
                        key: 23.5,
                    },
                ],
            );
            tracer.placement(tick * 10, 0, Some(5), Some(0), 12);
            tracer.phase(TickPhase::Physics, 1_500);
            tracer.zone(0, 700, 22.4, 0.61);
            tracer.zone(1, 650, 22.1, 0.55);
            tracer.anomaly("ThermalViolation", Some(5), 30.2);
            tracer.end_tick(5_000);
        }
        tracer.into_buffer()
    }

    #[test]
    fn render_parse_validate_round_trip() {
        let buffer = sample_buffer();
        let json = render_trace(&buffer);
        let trace = parse_trace(&json).expect("parses");
        // 5 metadata + 9 records per tick * 3 ticks.
        assert_eq!(trace.trace_events.len(), 5 + 9 * 3);
        let stats = validate_trace(&json).expect("validates");
        assert_eq!(stats.ticks, 3);
        assert_eq!(stats.phases, 9);
        assert_eq!(stats.zones, 6);
        assert_eq!(stats.placements, 3);
        assert_eq!(stats.decisions, 3);
        assert_eq!(stats.anomalies, 3);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn render_is_deterministic() {
        let buffer = sample_buffer();
        assert_eq!(render_trace(&buffer), render_trace(&buffer));
    }

    #[test]
    fn event_serde_round_trips() {
        let buffer = sample_buffer();
        let trace = parse_trace(&render_trace(&buffer)).expect("parses");
        let json = serde_json::to_string(&trace).expect("serializes");
        let back = parse_trace(&json).expect("re-parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn ticks_lay_out_sequentially() {
        let buffer = sample_buffer();
        let trace = parse_trace(&render_trace(&buffer)).expect("parses");
        let ticks: Vec<&ChromeEvent> = trace
            .trace_events
            .iter()
            .filter(|e| e.cat == "tick")
            .collect();
        assert_eq!(ticks.len(), 3);
        for pair in ticks.windows(2) {
            assert!(pair[1].ts >= pair[0].ts + pair[0].dur.unwrap());
        }
    }

    #[test]
    fn rejects_garbage_and_unknown_fields() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{}").is_err());
        let json = r#"{"traceEvents": [], "displayTimeUnit": "ms", "bogus": 1}"#;
        assert!(parse_trace(json).is_err());
        let json = r#"{"traceEvents": [{"name": "x", "cat": "tick", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1, "extra": 2}]}"#;
        assert!(parse_trace(json).is_err());
        // Parses but holds no events: validation rejects it.
        let json = r#"{"traceEvents": [], "displayTimeUnit": "ms"}"#;
        assert!(validate_trace(json).is_err());
    }

    #[test]
    fn rejects_duplicate_ids_and_bad_shapes() {
        let buffer = sample_buffer();
        let json = render_trace(&buffer);
        // Duplicate an event: its (tick, seq) id collides.
        let mut trace = parse_trace(&json).expect("parses");
        let dup = trace
            .trace_events
            .iter()
            .find(|e| e.cat == "placement")
            .expect("has a placement")
            .clone();
        trace.trace_events.push(dup);
        let json = serde_json::to_string(&trace).expect("serializes");
        let error = validate_trace(&json).expect_err("duplicate id rejected");
        assert!(error.message.contains("duplicate id"), "{error}");
        // A span whose dur is missing.
        let mut trace = parse_trace(&render_trace(&buffer)).expect("parses");
        for event in &mut trace.trace_events {
            if event.cat == "tick" {
                event.dur = None;
            }
        }
        let json = serde_json::to_string(&trace).expect("serializes");
        assert!(validate_trace(&json).is_err());
        // An instant stripped of its thread scope.
        let mut trace = parse_trace(&render_trace(&buffer)).expect("parses");
        for event in &mut trace.trace_events {
            if event.ph == "i" {
                event.s = None;
            }
        }
        let json = serde_json::to_string(&trace).expect("serializes");
        assert!(validate_trace(&json).is_err());
    }

    #[test]
    fn rejects_partial_overlap() {
        let buffer = sample_buffer();
        let mut trace = parse_trace(&render_trace(&buffer)).expect("parses");
        // Stretch a phase span past its tick span's end: partial
        // overlap on the tick lane.
        let tick_end = trace
            .trace_events
            .iter()
            .find(|e| e.cat == "tick")
            .map(|e| e.ts + e.dur.unwrap())
            .expect("has a tick span");
        for event in &mut trace.trace_events {
            if event.cat == "phase" {
                event.dur = Some(tick_end - event.ts + 5.0);
                break;
            }
        }
        let json = serde_json::to_string(&trace).expect("serializes");
        let error = validate_trace(&json).expect_err("overlap rejected");
        assert!(error.message.contains("overlaps"), "{error}");
    }

    #[test]
    fn phase_spans_nest_inside_their_tick_span() {
        let buffer = sample_buffer();
        let trace = parse_trace(&render_trace(&buffer)).expect("parses");
        let ticks: Vec<(f64, f64)> = trace
            .trace_events
            .iter()
            .filter(|e| e.cat == "tick")
            .map(|e| (e.ts, e.ts + e.dur.unwrap()))
            .collect();
        for event in trace.trace_events.iter().filter(|e| e.cat == "phase") {
            let end = event.ts + event.dur.unwrap();
            assert!(
                ticks.iter().any(|&(s, e)| event.ts >= s && end <= e),
                "phase span [{}, {end}] outside every tick span",
                event.ts
            );
        }
    }

    #[test]
    fn dropped_count_rides_metadata() {
        let mut buffer = sample_buffer();
        buffer.dropped = 42;
        let stats = validate_trace(&render_trace(&buffer)).expect("validates");
        assert_eq!(stats.dropped, 42);
    }
}
