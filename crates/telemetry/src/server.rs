//! Dependency-free `/metrics` scrape endpoint.
//!
//! The engine renders the OpenMetrics exposition at its snapshot
//! cadence and swaps it into a [`MetricsPublisher`] — one `Arc` swap
//! under a short mutex. A [`MetricsServer`] thread accepts TCP
//! connections and answers `GET /metrics` from whatever publication is
//! current: the scrape thread never touches the tick loop, never blocks
//! it, and a slow or stuck scraper can at worst hold a stale `Arc`.
//!
//! Everything here is `std`-only (`std::net::TcpListener`), keeping the
//! crate dependency-free; the accept loop polls a shutdown flag with a
//! non-blocking listener so the server shuts down promptly when the run
//! finishes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The latest published exposition: simulation tick it was rendered at
/// plus the rendered OpenMetrics text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsPublication {
    /// Tick the exposition was rendered at (0 before the first tick).
    pub tick: u64,
    /// Rendered OpenMetrics text (ends with `# EOF`).
    pub body: String,
}

/// A shared slot the engine swaps freshly rendered expositions into.
///
/// Cloning is cheap; all clones share the slot. `publish` replaces the
/// current `Arc` (readers holding the old one keep a consistent
/// document); `latest` clones the `Arc` out. Both sides hold the mutex
/// only for the pointer swap, never while rendering or writing sockets.
#[derive(Debug, Clone, Default)]
pub struct MetricsPublisher {
    slot: Arc<Mutex<Arc<MetricsPublication>>>,
}

impl MetricsPublisher {
    /// Creates an empty publisher (serves an empty-but-valid exposition
    /// until the first publish).
    pub fn new() -> Self {
        let empty = MetricsPublication {
            tick: 0,
            body: "# EOF\n".to_owned(),
        };
        MetricsPublisher {
            slot: Arc::new(Mutex::new(Arc::new(empty))),
        }
    }

    /// Atomically replaces the published exposition.
    pub fn publish(&self, tick: u64, body: String) {
        let next = Arc::new(MetricsPublication { tick, body });
        *self.slot.lock().expect("metrics publisher poisoned") = next;
    }

    /// Returns the current publication.
    pub fn latest(&self) -> Arc<MetricsPublication> {
        self.slot
            .lock()
            .expect("metrics publisher poisoned")
            .clone()
    }
}

/// A background thread serving `GET /metrics` over plain HTTP/1.1.
///
/// Bind with [`MetricsServer::bind`] (port 0 picks a free port — see
/// [`MetricsServer::addr`]); the server answers every connection from
/// the publisher's latest publication and shuts down when dropped or
/// [`MetricsServer::shutdown`] is called.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Content type advertised on `/metrics` responses.
pub const METRICS_CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// spawns the accept thread.
    pub fn bind(addr: &str, publisher: MetricsPublisher) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("vmt-metrics".to_owned())
            .spawn(move || accept_loop(listener, publisher, thread_stop))
            .expect("spawn metrics server thread");
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, publisher: MetricsPublisher, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are rare (seconds apart) and responses are
                // small; serving inline keeps the server single-threaded
                // and bounded.
                let _ = serve_connection(stream, &publisher);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one request head and writes one response. Any IO error just
/// drops the connection — the scraper will retry.
fn serve_connection(mut stream: TcpStream, publisher: &MetricsPublisher) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2000)))?;

    // Read until the end of the request head (or the buffer fills —
    // scrape requests are tiny, so 4 KiB is generous).
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    loop {
        if len == buf.len() {
            break;
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Accept an optional query string so `GET /metrics?foo=1` works.
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => {
            let publication = publisher.latest();
            ("200 OK", METRICS_CONTENT_TYPE, publication.body.clone())
        }
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has head and body");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_latest_publication_and_404s_elsewhere() {
        let publisher = MetricsPublisher::new();
        let server = MetricsServer::bind("127.0.0.1:0", publisher.clone()).expect("bind");
        let addr = server.addr();

        // Before any publish: the empty-but-valid document.
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
        assert!(head.contains("openmetrics-text"));
        assert_eq!(body, "# EOF\n");

        publisher.publish(
            42,
            "# TYPE engine_ticks counter\nengine_ticks_total 42\n# EOF\n".into(),
        );
        let (_, body) = http_get(addr, "/metrics");
        assert!(body.contains("engine_ticks_total 42"));
        // Query strings are tolerated.
        let (head, _) = http_get(addr, "/metrics?x=1");
        assert!(head.starts_with("HTTP/1.1 200 OK"));

        let (head, _) = http_get(addr, "/other");
        assert!(head.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn shutdown_joins_and_is_idempotent() {
        let mut server = MetricsServer::bind("127.0.0.1:0", MetricsPublisher::new()).expect("bind");
        server.shutdown();
        server.shutdown();
        // Dropping after shutdown must not hang or panic.
        drop(server);
    }

    #[test]
    fn publisher_swaps_atomically() {
        let publisher = MetricsPublisher::new();
        let reader = publisher.clone();
        let old = reader.latest();
        publisher.publish(7, "# EOF\n".into());
        assert_eq!(reader.latest().tick, 7);
        // The old Arc is still a consistent document.
        assert_eq!(old.tick, 0);
    }
}
