//! The structured JSONL event schema.
//!
//! One [`Event`] per line. The vendored serde derive uses the externally
//! tagged enum representation, so a line looks like
//! `{"Snapshot": {"tick": 60, ...}}` — the single top-level key is the
//! event kind, which makes the stream trivially greppable
//! (`grep '"Melt"' run.jsonl`).

use crate::phases::PhaseBreakdown;
use crate::registry::MetricsSnapshot;
use crate::watchdog::AnomalyEvent;

/// Version stamp written into [`RunConfigEvent`] and [`SummaryEvent`] so
/// downstream tooling can detect schema drift.
///
/// Version history: 1 = PR 3 stream (RunConfig/Snapshot/Melt/HotGroup/
/// Summary); 2 = adds `Anomaly` events and the summary's `write_errors`
/// and `anomalies` fields.
pub const SCHEMA_VERSION: u32 = 2;

/// Deterministic per-policy placement statistics.
///
/// Policies keep these as plain `u64` fields incremented unconditionally
/// on their decision paths (no atomics, no branches on "is telemetry
/// on") so the counts are identical whether or not a sink is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct SchedulerCounters {
    /// Successful job placements.
    pub placements: u64,
    /// Placements routed to the hot group.
    pub hot_placements: u64,
    /// Placements routed to the cold group.
    pub cold_placements: u64,
    /// Hot-preferred jobs that spilled to the cold group (or vice versa)
    /// because the preferred group was full.
    pub spills: u64,
    /// Times the hot group grew by one server.
    pub hot_group_growth: u64,
    /// Times the hot group shrank by one server.
    pub hot_group_shrink: u64,
    /// Times a server crossed the scheduler's wax-melted threshold
    /// (either direction), as seen by its per-tick refresh.
    pub wax_crossings: u64,
    /// Idle hot-group servers kept on the warm list instead of released.
    pub keep_warm: u64,
}

/// How a server's reported melt state changed between two ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MeltTransition {
    /// The wax store crossed the reporting threshold upward.
    BeganMelting,
    /// The wax store refroze below the reporting threshold.
    Refroze,
}

/// How a scheduler's hot group changed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HotGroupTransition {
    /// The hot group added servers.
    Grew,
    /// The hot group released servers.
    Shrank,
}

/// First line of every stream: what this run is.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunConfigEvent {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Policy label (e.g. `"vmt-wa(gv=8)"`).
    pub policy: String,
    /// Server count.
    pub servers: u64,
    /// Cores per server.
    pub cores_per_server: u64,
    /// Planned tick count.
    pub ticks: u64,
    /// Tick length in simulated seconds.
    pub tick_seconds: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Physics worker threads.
    pub threads: u64,
    /// Whether servers carry a PCM (wax) store.
    pub has_wax: bool,
    /// Snapshot cadence in ticks.
    pub snapshot_every_ticks: u64,
}

/// Periodic cluster state sample.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SnapshotEvent {
    /// Tick this sample was taken at (1-based: after the tick ran).
    pub tick: u64,
    /// Simulated time in hours.
    pub sim_hours: f64,
    /// Jobs currently running.
    pub jobs_in_flight: u64,
    /// Core utilization across the cluster, 0..=1.
    pub utilization: f64,
    /// Mean air-at-wax temperature (deg C).
    pub mean_air_c: f64,
    /// Hottest server's air-at-wax temperature (deg C).
    pub max_air_c: f64,
    /// Fraction of servers whose wax reports melted, 0..=1 (0 without
    /// wax).
    pub melted_fraction: f64,
    /// Current hot-group size, if the policy keeps one.
    pub hot_group_size: Option<u64>,
}

/// A server's wax store crossed the melt-reporting threshold.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeltEvent {
    /// Tick the transition was observed at.
    pub tick: u64,
    /// Server index.
    pub server: u64,
    /// Direction of the crossing.
    pub transition: MeltTransition,
    /// The server's air-at-wax temperature at observation (deg C).
    pub air_c: f64,
    /// Servers currently reporting melted, after this transition.
    pub melted_servers: u64,
}

/// The scheduler's hot group changed size.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HotGroupEvent {
    /// Tick the change was observed at.
    pub tick: u64,
    /// Direction of the change.
    pub transition: HotGroupTransition,
    /// Size before the change.
    pub previous: u64,
    /// Size after the change.
    pub current: u64,
}

/// Last line of every stream: run totals.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SummaryEvent {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Policy label.
    pub policy: String,
    /// Ticks executed.
    pub ticks_run: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Throughput (`ticks_run / wall_s`).
    pub ticks_per_s: f64,
    /// Successful placements over the run.
    pub placements: u64,
    /// Jobs that could not be placed anywhere.
    pub dropped_jobs: u64,
    /// Peak cluster cooling load (W).
    pub peak_cooling_w: f64,
    /// Peak cluster electrical load (W).
    pub peak_electrical_w: f64,
    /// Fraction of servers reporting melted at end of run.
    pub final_melted_fraction: f64,
    /// Event-sink writes that failed during the run (disk full, closed
    /// pipe, ...) — a non-zero value means the stream is incomplete.
    /// Counted up to the summary's own emission; `check-telemetry`
    /// treats any non-zero value as a failure.
    #[serde(default)]
    pub write_errors: u64,
    /// Watchdog anomalies fired during the run.
    #[serde(default)]
    pub anomalies: u64,
    /// Per-phase wall-clock attribution.
    pub phases: PhaseBreakdown,
    /// Scheduler decision counters, when the policy reports them.
    pub scheduler: Option<SchedulerCounters>,
    /// Every metric registered during the run.
    pub metrics: MetricsSnapshot,
}

/// One line of the JSONL stream.
// The `Summary` variant dwarfs the others, but events are built once
// per emission and serialized immediately — never stored in bulk — and
// boxing it would rely on `Box` support in the vendored serde derive.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Event {
    /// Run configuration (always first).
    RunConfig(RunConfigEvent),
    /// Periodic cluster sample.
    Snapshot(SnapshotEvent),
    /// Wax melt-threshold crossing.
    Melt(MeltEvent),
    /// Hot-group size change.
    HotGroup(HotGroupEvent),
    /// A watchdog fired.
    Anomaly(AnomalyEvent),
    /// Run totals (always last).
    Summary(SummaryEvent),
}

impl Event {
    /// The event's kind tag, as it appears as the JSON object key.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunConfig(_) => "RunConfig",
            Event::Snapshot(_) => "Snapshot",
            Event::Melt(_) => "Melt",
            Event::HotGroup(_) => "HotGroup",
            Event::Anomaly(_) => "Anomaly",
            Event::Summary(_) => "Summary",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::RunConfig(RunConfigEvent {
                schema_version: SCHEMA_VERSION,
                policy: "vmt-wa(gv=8)".into(),
                servers: 1000,
                cores_per_server: 16,
                ticks: 2880,
                tick_seconds: 60.0,
                seed: 42,
                threads: 4,
                has_wax: true,
                snapshot_every_ticks: 60,
            }),
            Event::Snapshot(SnapshotEvent {
                tick: 60,
                sim_hours: 1.0,
                jobs_in_flight: 512,
                utilization: 0.4375,
                mean_air_c: 31.5,
                max_air_c: 41.25,
                melted_fraction: 0.125,
                hot_group_size: Some(125),
            }),
            Event::Melt(MeltEvent {
                tick: 77,
                server: 3,
                transition: MeltTransition::BeganMelting,
                air_c: 40.5,
                melted_servers: 126,
            }),
            Event::HotGroup(HotGroupEvent {
                tick: 120,
                transition: HotGroupTransition::Grew,
                previous: 125,
                current: 126,
            }),
            Event::Anomaly(AnomalyEvent {
                tick: 130,
                watchdog: crate::watchdog::WatchdogKind::ThermalViolation,
                server: Some(3),
                value: 46.2,
                threshold: 45.0,
                detail: "server 3 crossed the red-line".into(),
            }),
        ];
        for event in events {
            let line = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn summary_round_trips_with_nested_sections() {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("scheduler.placements".into(), 9001);
        metrics.gauges.insert("cluster.utilization".into(), 0.5);
        let event = Event::Summary(SummaryEvent {
            schema_version: SCHEMA_VERSION,
            policy: "coolest-first".into(),
            ticks_run: 2880,
            wall_s: 1.5,
            ticks_per_s: 1920.0,
            placements: 9001,
            dropped_jobs: 0,
            peak_cooling_w: 250_000.0,
            peak_electrical_w: 260_000.0,
            final_melted_fraction: 0.25,
            write_errors: 0,
            anomalies: 2,
            phases: PhaseBreakdown {
                physics_s: 1.0,
                total_s: 1.4,
                ticks: 2880,
                ..PhaseBreakdown::default()
            },
            scheduler: Some(SchedulerCounters {
                placements: 9001,
                hot_placements: 6000,
                cold_placements: 3001,
                ..SchedulerCounters::default()
            }),
            metrics,
        });
        let line = serde_json::to_string(&event).unwrap();
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn externally_tagged_layout_is_greppable() {
        let line = serde_json::to_string(&Event::Melt(MeltEvent {
            tick: 1,
            server: 0,
            transition: MeltTransition::Refroze,
            air_c: 30.0,
            melted_servers: 0,
        }))
        .unwrap();
        assert!(line.starts_with("{\"Melt\":"), "got {line}");
        assert!(line.contains("\"Refroze\""));
    }

    #[test]
    fn missing_optional_fields_deserialize_to_none() {
        let line = r#"{"Snapshot":{"tick":1,"sim_hours":0.01,"jobs_in_flight":0,"utilization":0.0,"mean_air_c":25.0,"max_air_c":25.0,"melted_fraction":0.0}}"#;
        let back: Event = serde_json::from_str(line).unwrap();
        match back {
            Event::Snapshot(s) => assert_eq!(s.hot_group_size, None),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
