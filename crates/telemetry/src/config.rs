//! Wiring: what a telemetry-enabled simulation carries.

use crate::events::SummaryEvent;
use crate::registry::MetricsRegistry;
use crate::server::MetricsPublisher;
use crate::sink::EventSink;
use crate::tracer::{TraceSpec, TracerHandle};
use crate::watchdog::WatchdogSpec;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Flight-recorder arming parameters.
///
/// The recorder itself is built by the engine at run start (it needs
/// the ring preallocated on the engine thread); this config only says
/// how big the ring is and where dumps go.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightConfig {
    /// Ring capacity in records (clamped to at least 16 by the
    /// recorder).
    pub capacity: usize,
    /// Where dumps are written. The end-of-run on-demand dump goes to
    /// this exact path; watchdog-triggered dumps go to
    /// `<path>.anomaly<N>` siblings. `None` arms the ring without any
    /// file output (events and counters still record anomalies).
    pub dump_path: Option<PathBuf>,
    /// Maximum watchdog-triggered dump files per run (guards against a
    /// misconfigured watchdog filling the disk).
    pub max_anomaly_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            capacity: 65_536,
            dump_path: None,
            max_anomaly_dumps: 4,
        }
    }
}

/// A shared slot the engine deposits its [`SummaryEvent`] into at the
/// end of a run.
///
/// The engine consumes the `Simulation` (and with it the telemetry
/// config), so the caller keeps a clone of this handle to read the
/// summary — phase breakdown, scheduler counters, metrics — after
/// `run()` returns.
#[derive(Debug, Clone, Default)]
pub struct SummaryHandle(Arc<Mutex<Option<SummaryEvent>>>);

impl SummaryHandle {
    /// Creates an empty handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores the run summary (called by the engine).
    pub fn set(&self, summary: SummaryEvent) {
        *self.0.lock().expect("summary handle poisoned") = Some(summary);
    }

    /// Copies the summary out, if a run has finished.
    pub fn get(&self) -> Option<SummaryEvent> {
        self.0.lock().expect("summary handle poisoned").clone()
    }
}

/// Everything a telemetry-enabled run carries.
///
/// The engine holds this as an `Option`: `None` (the default) is the
/// zero-cost path — no clocks, no counters, no events. Construct one,
/// keep clones of [`TelemetryConfig::summary`] (and the registry, if you
/// want live reads), and hand it to the simulation.
#[derive(Debug)]
pub struct TelemetryConfig {
    /// Counters / gauges / histograms the engine and policies record
    /// into. Clone it before handing the config over to read metrics
    /// while the run is in flight.
    pub registry: MetricsRegistry,
    /// Where JSONL events go; `None` keeps profiling and metrics but
    /// writes no stream.
    pub sink: Option<EventSink>,
    /// Cluster snapshot cadence in ticks (default 60 — one snapshot per
    /// simulated hour at the standard 60 s tick).
    pub snapshot_every_ticks: u64,
    /// When `Some(n)`, render a progress line to stderr every `n` ticks.
    pub progress_every_ticks: Option<u64>,
    /// When `Some`, the engine arms a flight recorder of this shape.
    pub flight: Option<FlightConfig>,
    /// Watchdog detectors to arm; empty (the default) evaluates none.
    pub watchdogs: Vec<WatchdogSpec>,
    /// When `Some(capacity)`, the engine registers per-tick time series
    /// (cluster thermals, cooling load, spills, per-zone temperatures)
    /// retaining the most recent `capacity` samples each. `None` (the
    /// default) registers no series and pushes nothing — the zero-cost
    /// disabled path.
    pub series_capacity: Option<usize>,
    /// When `Some(n)`, render the live terminal dashboard every `n`
    /// ticks (implies series — enabling the dashboard turns series on
    /// with a default window if none was configured).
    pub dashboard_every_ticks: Option<u64>,
    /// When `Some`, the engine renders the OpenMetrics exposition at the
    /// snapshot cadence and swaps it into this publisher for the
    /// `/metrics` scrape thread to serve.
    pub publisher: Option<MetricsPublisher>,
    /// When `Some`, the engine arms the deterministic span tracer with
    /// this ring size and sampling policy. `None` (the default) emits
    /// no trace records and takes no extra timestamps.
    pub trace: Option<TraceSpec>,
    /// Where the finished [`TraceBuffer`](crate::TraceBuffer) is
    /// deposited when the tracer is armed.
    pub tracer: TracerHandle,
    /// Where the final [`SummaryEvent`] is deposited.
    pub summary: SummaryHandle,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            registry: MetricsRegistry::new(),
            sink: None,
            snapshot_every_ticks: 60,
            progress_every_ticks: None,
            flight: None,
            watchdogs: Vec::new(),
            series_capacity: None,
            dashboard_every_ticks: None,
            publisher: None,
            trace: None,
            tracer: TracerHandle::new(),
            summary: SummaryHandle::new(),
        }
    }
}

impl TelemetryConfig {
    /// A config with metrics + profiling only (no sink, no progress).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a JSONL event sink.
    pub fn with_sink(mut self, sink: EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Overrides the snapshot cadence (clamped to at least 1 tick).
    pub fn with_snapshot_every(mut self, ticks: u64) -> Self {
        self.snapshot_every_ticks = ticks.max(1);
        self
    }

    /// Enables stderr progress lines every `ticks` ticks.
    pub fn with_progress_every(mut self, ticks: u64) -> Self {
        self.progress_every_ticks = Some(ticks.max(1));
        self
    }

    /// Arms the flight recorder.
    pub fn with_flight(mut self, flight: FlightConfig) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Arms watchdog detectors. Watchdogs that fire emit `Anomaly`
    /// events and (when a flight recorder with a dump path is armed)
    /// trigger context dumps.
    pub fn with_watchdogs(mut self, specs: Vec<WatchdogSpec>) -> Self {
        self.watchdogs = specs;
        self
    }

    /// Default series window: 48 simulated hours at the 60 s tick.
    pub const DEFAULT_SERIES_CAPACITY: usize = 2880;

    /// Enables per-tick time series with room for `capacity` samples
    /// (clamped to at least 2 by the ring).
    pub fn with_series(mut self, capacity: usize) -> Self {
        self.series_capacity = Some(capacity);
        self
    }

    /// Enables the live terminal dashboard every `ticks` ticks (clamped
    /// to at least 1). Turns series on with
    /// [`DEFAULT_SERIES_CAPACITY`](Self::DEFAULT_SERIES_CAPACITY) if
    /// none was configured — sparklines need history.
    pub fn with_dashboard_every(mut self, ticks: u64) -> Self {
        self.dashboard_every_ticks = Some(ticks.max(1));
        if self.series_capacity.is_none() {
            self.series_capacity = Some(Self::DEFAULT_SERIES_CAPACITY);
        }
        self
    }

    /// Arms the deterministic span tracer. Keep a clone of
    /// [`TelemetryConfig::tracer`] to collect the finished
    /// [`TraceBuffer`](crate::TraceBuffer) after the run.
    pub fn with_trace(mut self, spec: TraceSpec) -> Self {
        self.trace = Some(spec);
        self
    }

    /// Attaches a metrics publisher: the engine renders the OpenMetrics
    /// exposition at the snapshot cadence and swaps it in for the
    /// scrape server. Keep a clone (or the bound
    /// [`MetricsServer`](crate::MetricsServer)) to read it.
    pub fn with_publisher(mut self, publisher: MetricsPublisher) -> Self {
        self.publisher = Some(publisher);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::SCHEMA_VERSION;
    use crate::phases::PhaseBreakdown;
    use crate::registry::MetricsSnapshot;

    #[test]
    fn summary_handle_shares_across_clones() {
        let handle = SummaryHandle::new();
        let reader = handle.clone();
        assert!(reader.get().is_none());
        handle.set(SummaryEvent {
            schema_version: SCHEMA_VERSION,
            policy: "p".into(),
            ticks_run: 1,
            wall_s: 0.0,
            ticks_per_s: 0.0,
            placements: 0,
            dropped_jobs: 0,
            peak_cooling_w: 0.0,
            peak_electrical_w: 0.0,
            final_melted_fraction: 0.0,
            write_errors: 0,
            anomalies: 0,
            phases: PhaseBreakdown::default(),
            scheduler: None,
            metrics: MetricsSnapshot::default(),
        });
        assert_eq!(reader.get().unwrap().policy, "p");
    }

    #[test]
    fn defaults_snapshot_hourly_with_no_sink() {
        let config = TelemetryConfig::new();
        assert_eq!(config.snapshot_every_ticks, 60);
        assert!(config.sink.is_none());
        assert!(config.progress_every_ticks.is_none());
        let config = config.with_snapshot_every(0).with_progress_every(0);
        assert_eq!(config.snapshot_every_ticks, 1);
        assert_eq!(config.progress_every_ticks, Some(1));
    }

    #[test]
    fn observability_defaults_off_and_dashboard_implies_series() {
        let config = TelemetryConfig::new();
        assert!(config.series_capacity.is_none());
        assert!(config.dashboard_every_ticks.is_none());
        assert!(config.publisher.is_none());
        let config = config.with_dashboard_every(0);
        assert_eq!(config.dashboard_every_ticks, Some(1));
        assert_eq!(
            config.series_capacity,
            Some(TelemetryConfig::DEFAULT_SERIES_CAPACITY)
        );
        // An explicit series window is not overridden by the dashboard.
        let config = TelemetryConfig::new()
            .with_series(100)
            .with_dashboard_every(5);
        assert_eq!(config.series_capacity, Some(100));
    }
}
