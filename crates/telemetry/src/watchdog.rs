//! Declarative thermal/scheduling anomaly detectors.
//!
//! A watchdog is a pure function of the per-tick state the engine
//! already computes — no extra simulation work, no feedback into
//! placement or physics. Each detector keeps a little sliding-window
//! state, and when its condition trips it produces a structured
//! [`AnomalyEvent`] that the engine writes to the event sink and uses to
//! trigger a flight-recorder dump (the last N ticks of causal context
//! leading up to the anomaly).
//!
//! Detectors latch: once fired they stay quiet until the condition
//! clears (plus a cooldown), so a sustained violation produces one
//! anomaly with context, not an event per tick.

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WatchdogKind {
    /// A server's air-at-wax temperature exceeded the red-line.
    ThermalViolation,
    /// A loaded hot-group server's wax stopped melting mid-transition.
    WaxStall,
    /// The scheduler's spill rate exceeded its QoS threshold.
    QosSpill,
    /// The hot group resized too often within a window (oscillation).
    GroupThrash,
}

impl WatchdogKind {
    /// Stable lower-case label (used in dump filenames and reports).
    pub fn label(self) -> &'static str {
        match self {
            WatchdogKind::ThermalViolation => "thermal-violation",
            WatchdogKind::WaxStall => "wax-stall",
            WatchdogKind::QosSpill => "qos-spill",
            WatchdogKind::GroupThrash => "group-thrash",
        }
    }
}

/// A detector and its thresholds, as data.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WatchdogSpec {
    /// Fire when any server's air-at-wax temperature exceeds
    /// `red_line_c`.
    ThermalViolation {
        /// Red-line temperature (°C).
        red_line_c: f64,
    },
    /// Fire when a loaded server sits above `air_above_c` with its wax
    /// mid-transition (reported melt in (0, 1)) yet its reported melt
    /// fraction does not move for `window_ticks` consecutive ticks.
    WaxStall {
        /// Consecutive stalled ticks before firing.
        window_ticks: u64,
        /// Air temperature the server must exceed for the stall to be
        /// suspicious (below it, not melting is expected).
        air_above_c: f64,
    },
    /// Fire when the scheduler records more than `max_spills` spills
    /// within any `window_ticks`-tick window.
    QosSpill {
        /// Sliding window length in ticks.
        window_ticks: u64,
        /// Maximum spills tolerated inside the window.
        max_spills: u64,
    },
    /// Fire when the hot group resizes at least `max_resizes` times
    /// within any `window_ticks`-tick window.
    GroupThrash {
        /// Sliding window length in ticks.
        window_ticks: u64,
        /// Resizes inside the window that count as thrash.
        max_resizes: u64,
    },
}

impl WatchdogSpec {
    /// The detector's kind tag.
    pub fn kind(self) -> WatchdogKind {
        match self {
            WatchdogSpec::ThermalViolation { .. } => WatchdogKind::ThermalViolation,
            WatchdogSpec::WaxStall { .. } => WatchdogKind::WaxStall,
            WatchdogSpec::QosSpill { .. } => WatchdogKind::QosSpill,
            WatchdogSpec::GroupThrash { .. } => WatchdogKind::GroupThrash,
        }
    }

    /// The default set, thresholds chosen so a healthy paper-default run
    /// stays silent: 45 °C red-line (healthy peaks sit near 40 °C), a
    /// 2-simulated-hour wax stall window, 300 spills per simulated hour,
    /// and 20 hot-group resizes per simulated hour.
    pub fn default_set() -> Vec<WatchdogSpec> {
        vec![
            WatchdogSpec::ThermalViolation { red_line_c: 45.0 },
            WatchdogSpec::WaxStall {
                window_ticks: 120,
                air_above_c: 36.0,
            },
            WatchdogSpec::QosSpill {
                window_ticks: 60,
                max_spills: 300,
            },
            WatchdogSpec::GroupThrash {
                window_ticks: 60,
                max_resizes: 20,
            },
        ]
    }
}

/// A fired watchdog, as written to the event stream.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnomalyEvent {
    /// Tick the watchdog fired at (1-based, post-physics).
    pub tick: u64,
    /// Which detector fired.
    pub watchdog: WatchdogKind,
    /// The offending server, when the anomaly is server-local.
    pub server: Option<u64>,
    /// Observed value (temperature °C, stalled ticks, spills or resizes
    /// in window — detector-dependent).
    pub value: f64,
    /// The configured threshold the value violated.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub detail: String,
}

/// Everything a watchdog can see about one tick.
///
/// Borrowed views of state the engine already maintains — building one
/// costs a handful of pointer copies.
#[derive(Debug, Clone, Copy)]
pub struct TickState<'a> {
    /// Tick just executed (1-based).
    pub tick: u64,
    /// Per-server air-at-wax temperature (°C).
    pub air_c: &'a [f64],
    /// Per-server estimator-reported melt fraction.
    pub reported_melt: &'a [f64],
    /// Per-server free cores.
    pub free_cores: &'a [u32],
    /// Cores per server (homogeneous cluster).
    pub cores_per_server: u32,
    /// Current hot-group size, if the policy keeps one.
    pub hot_group_size: Option<u64>,
    /// Scheduler spills recorded this tick.
    pub spills_delta: u64,
}

/// Per-detector sliding-window state.
#[derive(Debug)]
enum DetectorState {
    Thermal {
        /// Latched while any server is above the red-line.
        latched: bool,
    },
    WaxStall {
        /// Last observed reported melt per server.
        last_melt: Vec<f64>,
        /// Consecutive stalled-under-load ticks per server.
        stalled: Vec<u32>,
        /// Per-server latch (fire once per stall episode).
        latched: Vec<bool>,
    },
    QosSpill {
        /// Spill counts for the last `window_ticks` ticks (ring).
        window: Vec<u64>,
        cursor: usize,
        sum: u64,
        cooldown: u64,
    },
    GroupThrash {
        /// Resize indicators for the last `window_ticks` ticks (ring).
        window: Vec<u64>,
        cursor: usize,
        sum: u64,
        last_size: Option<u64>,
        cooldown: u64,
    },
}

/// A configured set of armed detectors.
#[derive(Debug)]
pub struct WatchdogSet {
    specs: Vec<WatchdogSpec>,
    states: Vec<DetectorState>,
    fired: Vec<AnomalyEvent>,
    anomalies_total: u64,
}

impl WatchdogSet {
    /// Arms `specs` for a cluster of `num_servers` servers.
    pub fn new(specs: Vec<WatchdogSpec>, num_servers: usize) -> Self {
        let states = specs
            .iter()
            .map(|spec| match *spec {
                WatchdogSpec::ThermalViolation { .. } => DetectorState::Thermal { latched: false },
                WatchdogSpec::WaxStall { .. } => DetectorState::WaxStall {
                    last_melt: vec![f64::NAN; num_servers],
                    stalled: vec![0; num_servers],
                    latched: vec![false; num_servers],
                },
                WatchdogSpec::QosSpill { window_ticks, .. } => DetectorState::QosSpill {
                    window: vec![0; window_ticks.max(1) as usize],
                    cursor: 0,
                    sum: 0,
                    cooldown: 0,
                },
                WatchdogSpec::GroupThrash { window_ticks, .. } => DetectorState::GroupThrash {
                    window: vec![0; window_ticks.max(1) as usize],
                    cursor: 0,
                    sum: 0,
                    last_size: None,
                    cooldown: 0,
                },
            })
            .collect();
        Self {
            specs,
            states,
            fired: Vec::new(),
            anomalies_total: 0,
        }
    }

    /// Armed detector specs.
    pub fn specs(&self) -> &[WatchdogSpec] {
        &self.specs
    }

    /// Anomalies fired over the whole run.
    pub fn anomalies_total(&self) -> u64 {
        self.anomalies_total
    }

    /// Evaluates every detector against one tick of state and returns
    /// the anomalies that fired this tick (usually none — the returned
    /// slice borrows an internal buffer reused across ticks).
    pub fn observe(&mut self, state: &TickState<'_>) -> &[AnomalyEvent] {
        self.fired.clear();
        for (spec, det) in self.specs.iter().zip(self.states.iter_mut()) {
            match (*spec, det) {
                (
                    WatchdogSpec::ThermalViolation { red_line_c },
                    DetectorState::Thermal { latched },
                ) => {
                    let mut worst: Option<(usize, f64)> = None;
                    for (i, &air) in state.air_c.iter().enumerate() {
                        if air > red_line_c && worst.is_none_or(|(_, w)| air > w) {
                            worst = Some((i, air));
                        }
                    }
                    match worst {
                        Some((server, air)) => {
                            if !*latched {
                                *latched = true;
                                self.fired.push(AnomalyEvent {
                                    tick: state.tick,
                                    watchdog: WatchdogKind::ThermalViolation,
                                    server: Some(server as u64),
                                    value: air,
                                    threshold: red_line_c,
                                    detail: format!(
                                        "server {server} at {air:.2} °C crossed the \
                                         {red_line_c:.2} °C red-line"
                                    ),
                                });
                            }
                        }
                        None => *latched = false,
                    }
                }
                (
                    WatchdogSpec::WaxStall {
                        window_ticks,
                        air_above_c,
                    },
                    DetectorState::WaxStall {
                        last_melt,
                        stalled,
                        latched,
                    },
                ) => {
                    let hot = state.hot_group_size.unwrap_or(0) as usize;
                    for i in 0..state.reported_melt.len().min(last_melt.len()) {
                        let melt = state.reported_melt[i];
                        let loaded = state.free_cores[i] < state.cores_per_server;
                        let mid_transition = melt > 0.0 && melt < 1.0;
                        let in_hot = i < hot;
                        let unchanged = melt == last_melt[i];
                        if in_hot
                            && loaded
                            && mid_transition
                            && unchanged
                            && state.air_c[i] > air_above_c
                        {
                            stalled[i] += 1;
                            if u64::from(stalled[i]) >= window_ticks && !latched[i] {
                                latched[i] = true;
                                self.fired.push(AnomalyEvent {
                                    tick: state.tick,
                                    watchdog: WatchdogKind::WaxStall,
                                    server: Some(i as u64),
                                    value: f64::from(stalled[i]),
                                    threshold: window_ticks as f64,
                                    detail: format!(
                                        "hot server {i} loaded at {:.2} °C but melt stuck at \
                                         {melt:.3} for {} ticks",
                                        state.air_c[i], stalled[i]
                                    ),
                                });
                            }
                        } else {
                            stalled[i] = 0;
                            latched[i] = false;
                        }
                        last_melt[i] = melt;
                    }
                }
                (
                    WatchdogSpec::QosSpill {
                        window_ticks,
                        max_spills,
                    },
                    DetectorState::QosSpill {
                        window,
                        cursor,
                        sum,
                        cooldown,
                    },
                ) => {
                    *sum -= window[*cursor];
                    window[*cursor] = state.spills_delta;
                    *sum += state.spills_delta;
                    *cursor = (*cursor + 1) % window.len();
                    if *cooldown > 0 {
                        *cooldown -= 1;
                    } else if *sum > max_spills {
                        *cooldown = window_ticks.max(1);
                        self.fired.push(AnomalyEvent {
                            tick: state.tick,
                            watchdog: WatchdogKind::QosSpill,
                            server: None,
                            value: *sum as f64,
                            threshold: max_spills as f64,
                            detail: format!(
                                "{sum} spills in the last {window_ticks} ticks \
                                 (threshold {max_spills})",
                            ),
                        });
                    }
                }
                (
                    WatchdogSpec::GroupThrash {
                        window_ticks,
                        max_resizes,
                    },
                    DetectorState::GroupThrash {
                        window,
                        cursor,
                        sum,
                        last_size,
                        cooldown,
                    },
                ) => {
                    let resized = match (*last_size, state.hot_group_size) {
                        (Some(prev), Some(cur)) => u64::from(prev != cur),
                        _ => 0,
                    };
                    *last_size = state.hot_group_size;
                    *sum -= window[*cursor];
                    window[*cursor] = resized;
                    *sum += resized;
                    *cursor = (*cursor + 1) % window.len();
                    if *cooldown > 0 {
                        *cooldown -= 1;
                    } else if *sum >= max_resizes {
                        *cooldown = window_ticks.max(1);
                        self.fired.push(AnomalyEvent {
                            tick: state.tick,
                            watchdog: WatchdogKind::GroupThrash,
                            server: None,
                            value: *sum as f64,
                            threshold: max_resizes as f64,
                            detail: format!(
                                "hot group resized {sum} times in the last {window_ticks} \
                                 ticks (threshold {max_resizes})",
                            ),
                        });
                    }
                }
                _ => unreachable!("spec/state built together"),
            }
        }
        self.anomalies_total += self.fired.len() as u64;
        &self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state<'a>(
        tick: u64,
        air: &'a [f64],
        melt: &'a [f64],
        free: &'a [u32],
        hot: Option<u64>,
        spills: u64,
    ) -> TickState<'a> {
        TickState {
            tick,
            air_c: air,
            reported_melt: melt,
            free_cores: free,
            cores_per_server: 32,
            hot_group_size: hot,
            spills_delta: spills,
        }
    }

    #[test]
    fn thermal_violation_fires_once_per_excursion() {
        let mut set =
            WatchdogSet::new(vec![WatchdogSpec::ThermalViolation { red_line_c: 45.0 }], 2);
        let melt = [0.5, 0.5];
        let free = [0, 0];
        let hot = Some(2);
        // Below red-line: quiet.
        assert!(set
            .observe(&state(1, &[40.0, 41.0], &melt, &free, hot, 0))
            .is_empty());
        // Crossing fires once, names the hottest server.
        let fired = set.observe(&state(2, &[46.0, 47.5], &melt, &free, hot, 0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].watchdog, WatchdogKind::ThermalViolation);
        assert_eq!(fired[0].server, Some(1));
        assert!((fired[0].value - 47.5).abs() < 1e-12);
        // Still above: latched, no repeat.
        assert!(set
            .observe(&state(3, &[48.0, 48.0], &melt, &free, hot, 0))
            .is_empty());
        // Clears, then a new excursion fires again.
        assert!(set
            .observe(&state(4, &[40.0, 40.0], &melt, &free, hot, 0))
            .is_empty());
        assert_eq!(
            set.observe(&state(5, &[46.0, 40.0], &melt, &free, hot, 0))
                .len(),
            1
        );
        assert_eq!(set.anomalies_total(), 2);
    }

    #[test]
    fn wax_stall_needs_load_heat_and_a_full_window() {
        let mut set = WatchdogSet::new(
            vec![WatchdogSpec::WaxStall {
                window_ticks: 3,
                air_above_c: 36.0,
            }],
            1,
        );
        let air = [38.0];
        let free = [10]; // loaded (free < cores)
        let melt = [0.4];
        // First observation sets the baseline; then three unchanged ticks.
        assert!(set
            .observe(&state(1, &air, &melt, &free, Some(1), 0))
            .is_empty());
        assert!(set
            .observe(&state(2, &air, &melt, &free, Some(1), 0))
            .is_empty());
        assert!(set
            .observe(&state(3, &air, &melt, &free, Some(1), 0))
            .is_empty());
        let fired = set.observe(&state(4, &air, &melt, &free, Some(1), 0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].watchdog, WatchdogKind::WaxStall);
        // Latched: no refire while still stalled.
        assert!(set
            .observe(&state(5, &air, &melt, &free, Some(1), 0))
            .is_empty());
        // Melt moves: stall clears.
        let moved = [0.41];
        assert!(set
            .observe(&state(6, &air, &moved, &free, Some(1), 0))
            .is_empty());
    }

    #[test]
    fn wax_stall_ignores_idle_cold_or_completed_servers() {
        let mut set = WatchdogSet::new(
            vec![WatchdogSpec::WaxStall {
                window_ticks: 2,
                air_above_c: 36.0,
            }],
            3,
        );
        let air = [38.0, 38.0, 38.0];
        // Server 0 fully melted, server 1 idle, server 2 outside the hot
        // group — none may fire.
        let melt = [1.0, 0.5, 0.5];
        let free = [0, 32, 0];
        for tick in 1..10 {
            assert!(set
                .observe(&state(tick, &air, &melt, &free, Some(2), 0))
                .is_empty());
        }
    }

    #[test]
    fn qos_spill_watches_a_sliding_window_with_cooldown() {
        let mut set = WatchdogSet::new(
            vec![WatchdogSpec::QosSpill {
                window_ticks: 4,
                max_spills: 10,
            }],
            1,
        );
        let air = [30.0];
        let melt = [0.0];
        let free = [32];
        assert!(set
            .observe(&state(1, &air, &melt, &free, None, 5))
            .is_empty());
        assert!(set
            .observe(&state(2, &air, &melt, &free, None, 5))
            .is_empty());
        // Window sum hits 11 > 10.
        let fired = set.observe(&state(3, &air, &melt, &free, None, 1));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value, 11.0);
        // Cooldown suppresses immediate refire even though the sum stays
        // high.
        assert!(set
            .observe(&state(4, &air, &melt, &free, None, 5))
            .is_empty());
    }

    #[test]
    fn group_thrash_counts_resizes_in_window() {
        let mut set = WatchdogSet::new(
            vec![WatchdogSpec::GroupThrash {
                window_ticks: 6,
                max_resizes: 3,
            }],
            1,
        );
        let air = [30.0];
        let melt = [0.0];
        let free = [32];
        // Oscillate 10 <-> 11 every tick; third resize fires.
        let sizes = [10u64, 11, 10, 11, 10];
        let mut fired_at = None;
        for (i, &s) in sizes.iter().enumerate() {
            let fired = set.observe(&state(i as u64 + 1, &air, &melt, &free, Some(s), 0));
            if !fired.is_empty() && fired_at.is_none() {
                fired_at = Some(i as u64 + 1);
                assert_eq!(fired[0].watchdog, WatchdogKind::GroupThrash);
            }
        }
        assert_eq!(fired_at, Some(4), "third resize lands at tick 4");
    }

    #[test]
    fn default_set_arms_all_four() {
        let set = WatchdogSet::new(WatchdogSpec::default_set(), 4);
        let kinds: Vec<WatchdogKind> = set.specs().iter().map(|s| s.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                WatchdogKind::ThermalViolation,
                WatchdogKind::WaxStall,
                WatchdogKind::QosSpill,
                WatchdogKind::GroupThrash
            ]
        );
    }

    #[test]
    fn anomaly_event_round_trips_through_json() {
        let event = AnomalyEvent {
            tick: 99,
            watchdog: WatchdogKind::QosSpill,
            server: None,
            value: 42.0,
            threshold: 10.0,
            detail: "42 spills".into(),
        };
        let line = serde_json::to_string(&event).unwrap();
        let back: AnomalyEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, event);
    }
}
