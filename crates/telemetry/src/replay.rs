//! The deterministic placement trace: record a run's full
//! placement-decision stream, then re-drive the simulation from it.
//!
//! The trace is the recorder's correctness proof. A `record`ed run logs
//! every placement decision (which server, or a drop) in arrival order,
//! a compact per-tick digest of cluster state, and a final-state digest.
//! A `replay` rebuilds the same cluster and workload from the header,
//! bypasses the policy entirely — decisions come straight off the trace
//! — and recomputes the digests. Bit-identical digests at every tick and
//! at the end prove the trace captured *everything* that influenced the
//! run; the first mismatching tick localizes a divergence for bisection
//! (`replay --until`).
//!
//! This module owns the trace data model and file format (JSONL:
//! header, one line per tick, footer). The scheduler wrappers that
//! produce and consume traces live in `vmt-dcsim`.

/// Version stamp written into [`TraceHeader`] lines.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// An order-sensitive FNV-1a hasher for simulation state.
///
/// Deterministic across platforms and thread counts (the engine's state
/// is deterministic; hashing is sequential over the canonical server
/// order). `f64`s are hashed by their raw bits so the digest is exactly
/// as strict as the engine's own bit-identity guarantee.
#[derive(Debug, Clone)]
pub struct StateHasher(u64);

impl StateHasher {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the digest (e.g. a serialized container
    /// payload).
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one `u64` into the digest, byte by byte.
    #[inline]
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Folds one `f64` in by its raw bits.
    #[inline]
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// First line of a placement trace: everything needed to rebuild the
/// run (paper-default cluster shapes, like `vmt-experiments run`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceHeader {
    /// Schema version ([`TRACE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Policy label the decisions came from (informational — replay
    /// bypasses the policy).
    pub policy: String,
    /// Cluster size.
    pub servers: u64,
    /// Trace horizon in simulated hours.
    pub hours: f64,
    /// Cluster seed (duration jitter, arrival shuffle).
    pub cluster_seed: u64,
    /// Workload-trace seed.
    pub trace_seed: u64,
    /// Tick length in simulated seconds.
    pub tick_seconds: f64,
    /// Planned tick count.
    pub ticks: u64,
}

/// One tick of the trace: the pre-placement state digest, the hot-group
/// size the policy reported, and the tick's placement decisions in
/// arrival order (`server index`, or `-1` for a drop).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TickTrace {
    /// Tick index (0-based).
    pub t: u64,
    /// Digest of cluster state at the scheduler's tick boundary (after
    /// departures, before placements).
    pub digest: u64,
    /// Hot-group size the policy reported this tick, if any.
    pub hot: Option<u32>,
    /// Placement decisions, one per arriving job in arrival order.
    pub decisions: Vec<i32>,
}

/// Last line of a placement trace: end-of-run ground truth.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceFooter {
    /// Successful placements over the run.
    pub placements: u64,
    /// Dropped jobs over the run.
    pub dropped_jobs: u64,
    /// Digest of the final farm + result state.
    pub final_digest: u64,
    /// Ticks actually executed.
    pub ticks_run: u64,
}

/// One line of the trace file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TraceLine {
    /// Run parameters (always first).
    Header(TraceHeader),
    /// One tick's digest + decisions.
    Tick(TickTrace),
    /// End-of-run ground truth (always last).
    Footer(TraceFooter),
}

/// A fully parsed placement trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementTrace {
    /// Run parameters.
    pub header: TraceHeader,
    /// Per-tick digests and decisions, indexed by tick.
    pub ticks: Vec<TickTrace>,
    /// End-of-run ground truth.
    pub footer: TraceFooter,
}

impl PlacementTrace {
    /// Serializes the trace as JSONL (header line, tick lines, footer
    /// line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: &TraceLine| {
            out.push_str(&serde_json::to_string(line).expect("trace lines serialize"));
            out.push('\n');
        };
        push(&mut out, &TraceLine::Header(self.header.clone()));
        for tick in &self.ticks {
            push(&mut out, &TraceLine::Tick(tick.clone()));
        }
        push(&mut out, &TraceLine::Footer(self.footer.clone()));
        out
    }

    /// Parses and validates a JSONL trace: header first, footer last,
    /// tick lines contiguous from 0, decision counts consistent with the
    /// footer's totals.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut header: Option<TraceHeader> = None;
        let mut footer: Option<TraceFooter> = None;
        let mut ticks: Vec<TickTrace> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed: TraceLine = serde_json::from_str(line)
                .map_err(|e| format!("line {}: not a trace line: {e:?}", lineno + 1))?;
            if footer.is_some() {
                return Err(format!("line {}: line after Footer", lineno + 1));
            }
            match parsed {
                TraceLine::Header(h) => {
                    if header.is_some() {
                        return Err(format!("line {}: duplicate Header", lineno + 1));
                    }
                    if h.schema_version != TRACE_SCHEMA_VERSION {
                        return Err(format!(
                            "unsupported trace schema version {} (expected {TRACE_SCHEMA_VERSION})",
                            h.schema_version
                        ));
                    }
                    header = Some(h);
                }
                TraceLine::Tick(t) => {
                    if header.is_none() {
                        return Err(format!("line {}: Tick before Header", lineno + 1));
                    }
                    if t.t != ticks.len() as u64 {
                        return Err(format!(
                            "line {}: tick {} out of order (expected {})",
                            lineno + 1,
                            t.t,
                            ticks.len()
                        ));
                    }
                    ticks.push(t);
                }
                TraceLine::Footer(f) => footer = Some(f),
            }
        }
        let header = header.ok_or_else(|| "trace has no Header".to_string())?;
        let footer = footer.ok_or_else(|| "trace has no Footer (truncated?)".to_string())?;
        if ticks.len() as u64 != footer.ticks_run {
            return Err(format!(
                "footer claims {} ticks, trace has {}",
                footer.ticks_run,
                ticks.len()
            ));
        }
        let placed: u64 = ticks
            .iter()
            .map(|t| t.decisions.iter().filter(|&&d| d >= 0).count() as u64)
            .sum();
        let dropped: u64 = ticks
            .iter()
            .map(|t| t.decisions.iter().filter(|&&d| d < 0).count() as u64)
            .sum();
        if placed != footer.placements || dropped != footer.dropped_jobs {
            return Err(format!(
                "footer totals ({} placed, {} dropped) disagree with decisions \
                 ({placed} placed, {dropped} dropped)",
                footer.placements, footer.dropped_jobs
            ));
        }
        Ok(Self {
            header,
            ticks,
            footer,
        })
    }

    /// Total decisions across all ticks.
    pub fn decision_count(&self) -> u64 {
        self.ticks.iter().map(|t| t.decisions.len() as u64).sum()
    }
}

/// The verdict of comparing a replayed run against its trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayVerdict {
    /// Every compared digest matched — the trace is complete.
    BitIdentical {
        /// Ticks whose digests were compared.
        ticks_compared: u64,
    },
    /// A digest mismatched; the earliest divergent tick localizes the
    /// incompleteness for bisection.
    Diverged {
        /// First tick whose digest differed.
        first_tick: u64,
        /// Digest the trace recorded.
        expected: u64,
        /// Digest the replay computed.
        actual: u64,
    },
}

impl ReplayVerdict {
    /// True for [`ReplayVerdict::BitIdentical`].
    pub fn is_identical(&self) -> bool {
        matches!(self, ReplayVerdict::BitIdentical { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PlacementTrace {
        PlacementTrace {
            header: TraceHeader {
                schema_version: TRACE_SCHEMA_VERSION,
                policy: "vmt-wa".into(),
                servers: 4,
                hours: 1.0,
                cluster_seed: 7,
                trace_seed: 11,
                tick_seconds: 60.0,
                ticks: 2,
            },
            ticks: vec![
                TickTrace {
                    t: 0,
                    digest: 0xDEAD,
                    hot: Some(2),
                    decisions: vec![0, 1, -1],
                },
                TickTrace {
                    t: 1,
                    digest: 0xBEEF,
                    hot: Some(2),
                    decisions: vec![3],
                },
            ],
            footer: TraceFooter {
                placements: 3,
                dropped_jobs: 1,
                final_digest: 0xF00D,
                ticks_run: 2,
            },
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let t = trace();
        let text = t.to_jsonl();
        assert_eq!(text.lines().count(), 4);
        let back = PlacementTrace::parse(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.decision_count(), 4);
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let text = trace().to_jsonl();
        let without_footer: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        let err = PlacementTrace::parse(&without_footer).unwrap_err();
        assert!(err.contains("no Footer"), "got: {err}");
    }

    #[test]
    fn out_of_order_ticks_are_rejected() {
        let mut t = trace();
        t.ticks[1].t = 5;
        let err = PlacementTrace::parse(&t.to_jsonl()).unwrap_err();
        assert!(err.contains("out of order"), "got: {err}");
    }

    #[test]
    fn inconsistent_footer_totals_are_rejected() {
        let mut t = trace();
        t.footer.placements = 99;
        let err = PlacementTrace::parse(&t.to_jsonl()).unwrap_err();
        assert!(err.contains("disagree"), "got: {err}");
    }

    #[test]
    fn corrupted_line_reports_its_number() {
        let mut text = trace().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        text = format!("{}\n{{corrupt}}\n{}\n{}\n", lines[0], lines[2], lines[3]);
        let err = PlacementTrace::parse(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
    }

    #[test]
    fn hasher_is_order_sensitive_and_stable() {
        let mut a = StateHasher::new();
        a.write_f64(1.0);
        a.write_f64(2.0);
        let mut b = StateHasher::new();
        b.write_f64(2.0);
        b.write_f64(1.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = StateHasher::new();
        c.write_f64(1.0);
        c.write_f64(2.0);
        assert_eq!(a.finish(), c.finish());
        // Pinned value: the digest is part of the on-disk trace format,
        // so an accidental hasher change must fail a test.
        let mut pinned = StateHasher::new();
        pinned.write_u64(42);
        assert_eq!(pinned.finish(), 0xff3a_dd6b_3789_daef);
    }

    #[test]
    fn verdict_helpers() {
        assert!(ReplayVerdict::BitIdentical { ticks_compared: 10 }.is_identical());
        assert!(!ReplayVerdict::Diverged {
            first_tick: 3,
            expected: 1,
            actual: 2
        }
        .is_identical());
    }
}
