//! Live ANSI terminal dashboard: sparklines over registered series.
//!
//! The dashboard extends [`ProgressMeter`](crate::ProgressMeter): at the
//! progress cadence the engine hands it the current
//! [`ProgressFrame`](crate::ProgressFrame) plus one [`DashboardRow`] per
//! tracked quantity (ticks/s, peak cooling load, per-zone temperatures,
//! wax fraction, QoS spills), each carrying a downsampled series window.
//! Rendering is a pure function ([`render_dashboard`]) so tests never
//! need a terminal; the stateful [`Dashboard`] only adds cursor
//! bookkeeping (redraw-in-place via ANSI cursor-up) and graceful
//! degradation — when stderr is not a terminal or `TERM=dumb`, it falls
//! back to plain one-line progress output, exactly what `--progress`
//! prints today.
//!
//! Everything here is observational: the dashboard reads series windows
//! and frame values the tick already computed, takes no clocks of its
//! own, and can never influence simulation state.

use crate::progress::ProgressFrame;
use std::io::{IsTerminal, Write};

/// Unicode block characters from lowest to highest.
const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a fixed-width sparkline, normalizing finite
/// samples to the block ramp `▁▂▃▄▅▆▇█`. Non-finite samples render as
/// spaces; a constant series sits mid-ramp; fewer samples than `width`
/// left-pads with spaces so the newest sample is always rightmost.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let tail: &[f64] = if values.len() > width {
        &values[values.len() - width..]
    } else {
        values
    };
    let finite: Vec<f64> = tail.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = max - min;
    let mut out = String::with_capacity(width * 3);
    for _ in tail.len()..width {
        out.push(' ');
    }
    for &v in tail {
        if !v.is_finite() {
            out.push(' ');
        } else if span <= 0.0 || !span.is_finite() {
            out.push(SPARK_LEVELS[3]);
        } else {
            let level = (((v - min) / span) * 7.0).round().clamp(0.0, 7.0) as usize;
            out.push(SPARK_LEVELS[level]);
        }
    }
    out
}

/// One dashboard line: a labelled quantity with its series window.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardRow {
    /// Short label, e.g. `cooling` or `zone 03`.
    pub label: String,
    /// Current value, rendered after the sparkline.
    pub current: f64,
    /// Unit suffix, e.g. `°C`, `kW`, `%`.
    pub unit: String,
    /// Series window (oldest first), already downsampled to roughly the
    /// sparkline width.
    pub values: Vec<f64>,
}

impl DashboardRow {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        current: f64,
        unit: impl Into<String>,
        values: Vec<f64>,
    ) -> Self {
        DashboardRow {
            label: label.into(),
            current,
            unit: unit.into(),
            values,
        }
    }
}

/// Sparkline column width used by [`render_dashboard`].
pub const SPARK_WIDTH: usize = 40;

/// Columns a dashboard row needs besides the sparkline: the label
/// column, the separating spaces, and a formatted value with unit.
const ROW_RESERVED_COLS: usize = 26;

/// Clamps the requested sparkline width for one frame. Two ceilings
/// apply: the longest series window in the frame (a ring capacity below
/// the requested window shrinks the column instead of rendering a block
/// of dead padding) and, when the terminal reports a width, the columns
/// left after [`ROW_RESERVED_COLS`]. A zero-width terminal clamps all
/// the way down; the result is never zero, so a row always keeps at
/// least one sample column and width arithmetic cannot underflow.
pub fn clamp_spark_width(
    requested: usize,
    longest_series: usize,
    terminal_cols: Option<usize>,
) -> usize {
    let mut width = requested;
    if longest_series > 0 {
        width = width.min(longest_series);
    }
    if let Some(cols) = terminal_cols {
        width = width.min(cols.saturating_sub(ROW_RESERVED_COLS));
    }
    width.max(1)
}

/// Renders a full dashboard frame as plain text (no ANSI escapes): a
/// progress header followed by one sparkline row per quantity. Pure —
/// equal inputs yield equal output. The sparkline column is
/// [`SPARK_WIDTH`] clamped by [`clamp_spark_width`] for a terminal of
/// unknown width.
pub fn render_dashboard(frame: &ProgressFrame, rows: &[DashboardRow]) -> String {
    render_dashboard_width(frame, rows, None)
}

/// [`render_dashboard`] with an explicit terminal width (in columns) to
/// clamp against; `None` means the width is unknown.
pub fn render_dashboard_width(
    frame: &ProgressFrame,
    rows: &[DashboardRow],
    terminal_cols: Option<usize>,
) -> String {
    let longest = rows.iter().map(|r| r.values.len()).max().unwrap_or(0);
    let spark_width = clamp_spark_width(SPARK_WIDTH, longest, terminal_cols);
    let label_width = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(8);
    let mut out = String::new();
    out.push_str(&frame.render());
    out.push('\n');
    for row in rows {
        let value = if row.current.is_finite() {
            format!("{:.2}", row.current)
        } else {
            "?".to_owned()
        };
        out.push_str(&format!(
            "{:<label_width$} {} {value}{}\n",
            row.label,
            sparkline(&row.values, spark_width),
            row.unit,
        ));
    }
    out
}

/// How the dashboard writes to the terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DashboardMode {
    /// Full redraw-in-place ANSI rendering.
    Ansi,
    /// Dumb terminal / non-terminal: plain progress lines only.
    Plain,
}

/// Stateful dashboard driver: renders frames and redraws them in place
/// on a capable terminal, or degrades to plain progress lines.
#[derive(Debug)]
pub struct Dashboard {
    mode: DashboardMode,
    lines_drawn: usize,
    terminal_cols: Option<usize>,
}

impl Dashboard {
    /// Auto-detects the terminal: ANSI when stderr is a terminal and
    /// `TERM` is set to something other than `dumb` (or unset with a
    /// real terminal attached), plain otherwise. The terminal width is
    /// read from `COLUMNS` when exported; absent or unparsable values
    /// leave the width unknown and the sparkline at its default width.
    pub fn auto() -> Self {
        let dumb = std::env::var("TERM").map(|t| t == "dumb").unwrap_or(false);
        let mode = if std::io::stderr().is_terminal() && !dumb {
            DashboardMode::Ansi
        } else {
            DashboardMode::Plain
        };
        let cols = std::env::var("COLUMNS")
            .ok()
            .and_then(|c| c.trim().parse::<usize>().ok());
        Dashboard::with_mode(mode).with_columns(cols)
    }

    /// Forces a mode (tests, `--dashboard` on a pipe).
    pub fn with_mode(mode: DashboardMode) -> Self {
        Dashboard {
            mode,
            lines_drawn: 0,
            terminal_cols: None,
        }
    }

    /// Overrides the detected terminal width (tests, future resize
    /// handling). `Some(0)` is a legitimate zero-width terminal and
    /// clamps the sparkline to its one-column minimum.
    pub fn with_columns(mut self, cols: Option<usize>) -> Self {
        self.terminal_cols = cols;
        self
    }

    /// The active mode.
    pub fn mode(&self) -> DashboardMode {
        self.mode
    }

    /// Draws one frame to stderr. In ANSI mode the previous frame is
    /// erased (cursor-up + clear-to-end) so the dashboard redraws in
    /// place; in plain mode only the one-line progress header is
    /// printed, matching `--progress` output.
    pub fn draw(&mut self, frame: &ProgressFrame, rows: &[DashboardRow]) {
        let mut err = std::io::stderr().lock();
        match self.mode {
            DashboardMode::Ansi => {
                let text = render_dashboard_width(frame, rows, self.terminal_cols);
                let lines = text.lines().count();
                if self.lines_drawn > 0 {
                    // Move to the top of the previous frame and clear
                    // everything below before redrawing.
                    let _ = write!(err, "\x1b[{}F\x1b[0J", self.lines_drawn);
                }
                let _ = write!(err, "{text}");
                let _ = err.flush();
                self.lines_drawn = lines;
            }
            DashboardMode::Plain => {
                let _ = writeln!(err, "{}", frame.render());
            }
        }
    }

    /// Finishes the dashboard: leaves the last frame on screen and
    /// moves to a fresh line so the end-of-run report starts cleanly.
    pub fn finish(&mut self) {
        if self.mode == DashboardMode::Ansi && self.lines_drawn > 0 {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
            let _ = err.flush();
            self.lines_drawn = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_normalizes_to_ramp() {
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn sparkline_pads_short_series_on_the_left() {
        let line = sparkline(&[1.0, 2.0], 5);
        assert_eq!(line.chars().count(), 5);
        assert!(line.starts_with("   "), "got: {line:?}");
        assert!(line.ends_with('█'));
    }

    #[test]
    fn sparkline_truncates_to_newest_window() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let line = sparkline(&values, 10);
        assert_eq!(line.chars().count(), 10);
        // The newest (largest) sample is the full block.
        assert!(line.ends_with('█'));
    }

    #[test]
    fn sparkline_handles_constant_and_non_finite() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0], 3), "▄▄▄");
        let line = sparkline(&[1.0, f64::NAN, 3.0], 3);
        assert_eq!(line.chars().nth(1), Some(' '));
        assert_eq!(sparkline(&[], 4), "    ");
        // All-NaN: spaces, no panic.
        assert_eq!(sparkline(&[f64::NAN, f64::NAN], 2), "  ");
    }

    #[test]
    fn render_dashboard_is_pure_and_aligned() {
        let frame = ProgressFrame::compute(100, 400, 2.0, 7, 0.25);
        let rows = vec![
            DashboardRow::new("cooling", 12.5, "kW", vec![10.0, 11.0, 12.5]),
            DashboardRow::new("zone 00", 22.1, "°C", vec![21.0, 22.0, 22.1]),
        ];
        let a = render_dashboard(&frame, &rows);
        let b = render_dashboard(&frame, &rows);
        assert_eq!(a, b);
        assert!(a.starts_with("[ 25%] tick 100/400"), "got: {a}");
        assert!(a.contains("cooling"));
        assert!(a.contains("12.50kW"));
        assert!(a.contains("22.10°C"));
        assert_eq!(a.lines().count(), 3);
        // No ANSI escapes in the pure renderer.
        assert!(!a.contains('\x1b'));
    }

    #[test]
    fn render_dashboard_guards_non_finite_current() {
        let frame = ProgressFrame::compute(1, 2, 1.0, 0, 0.0);
        let rows = vec![DashboardRow::new("x", f64::NAN, "", vec![])];
        let text = render_dashboard(&frame, &rows);
        assert!(text.contains(" ?\n"), "got: {text}");
    }

    #[test]
    fn clamp_respects_series_capacity_and_terminal_width() {
        // A series window shorter than the requested width shrinks the
        // column; an empty frame keeps the requested layout.
        assert_eq!(clamp_spark_width(40, 12, None), 12);
        assert_eq!(clamp_spark_width(40, 0, None), 40);
        assert_eq!(clamp_spark_width(40, 100, None), 40);
        // A wide terminal leaves the width alone; a narrow one clamps
        // to the room left after the label and value columns.
        assert_eq!(clamp_spark_width(40, 100, Some(200)), 40);
        assert_eq!(clamp_spark_width(40, 100, Some(30)), 4);
        // Zero-width (and absurdly narrow) terminals clamp to the
        // one-column minimum instead of underflowing.
        assert_eq!(clamp_spark_width(40, 100, Some(0)), 1);
        assert_eq!(clamp_spark_width(40, 3, Some(5)), 1);
    }

    #[test]
    fn render_clamps_sparkline_to_series_window() {
        // Three samples in a 40-wide request: the column shrinks to 3
        // instead of left-padding 37 spaces of dead ring capacity.
        let frame = ProgressFrame::compute(10, 20, 1.0, 0, 0.5);
        let rows = vec![DashboardRow::new("cooling", 3.0, "kW", vec![1.0, 2.0, 3.0])];
        let text = render_dashboard(&frame, &rows);
        assert!(text.contains("▁▅█ 3.00kW"), "got: {text}");
    }

    #[test]
    fn render_survives_zero_width_terminal() {
        let frame = ProgressFrame::compute(10, 20, 1.0, 0, 0.5);
        let rows = vec![DashboardRow::new("cooling", 3.0, "kW", vec![1.0, 2.0, 3.0])];
        let text = render_dashboard_width(&frame, &rows, Some(0));
        // One sample column survives: the newest value at mid-ramp
        // (a single sample has zero span).
        assert!(text.contains("▄ 3.00kW"), "got: {text}");
        assert!(!text.contains('\x1b'));
    }

    #[test]
    fn dashboard_carries_detected_columns() {
        let dash = Dashboard::with_mode(DashboardMode::Ansi).with_columns(Some(0));
        assert_eq!(dash.terminal_cols, Some(0));
        let dash = Dashboard::with_mode(DashboardMode::Plain);
        assert_eq!(dash.terminal_cols, None);
    }

    #[test]
    fn plain_mode_never_tracks_lines() {
        let mut dash = Dashboard::with_mode(DashboardMode::Plain);
        let frame = ProgressFrame::compute(1, 2, 1.0, 0, 0.0);
        dash.draw(&frame, &[]);
        dash.finish();
        assert_eq!(dash.lines_drawn, 0);
    }
}
