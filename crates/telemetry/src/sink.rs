//! JSONL event sinks and stream validation.

use crate::events::{Event, RunConfigEvent, SummaryEvent};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An in-memory byte buffer shareable across the sink and the test that
/// inspects it (the engine consumes its sink; a clone of the buffer is
/// how the caller reads the stream back afterwards).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the buffered bytes out as a string (the stream is JSONL,
    /// so it is always valid UTF-8).
    pub fn contents(&self) -> String {
        let bytes = self.0.lock().expect("shared buffer poisoned");
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("shared buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A line-per-event JSONL writer.
///
/// Emission happens at most a handful of times per tick (snapshots and
/// transition events), never per job, so a buffered write behind a mutex
/// is fine here — the hot path is the metrics registry, not the sink.
/// I/O errors after construction are counted, not propagated: a failing
/// disk must not abort a multi-hour simulation.
pub struct EventSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    events_written: AtomicU64,
    write_errors: AtomicU64,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field(
                "events_written",
                &self.events_written.load(Ordering::Relaxed),
            )
            .field("write_errors", &self.write_errors.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventSink {
    /// Wraps an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            writer: Mutex::new(BufWriter::new(writer)),
            events_written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) `path` and streams events to it.
    pub fn to_file(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Streams events into a [`SharedBuffer`] clone.
    pub fn to_shared_buffer(buffer: &SharedBuffer) -> Self {
        Self::to_writer(Box::new(buffer.clone()))
    }

    /// Serializes `event` and writes it as one line.
    pub fn emit(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("telemetry events always serialize");
        let mut writer = self.writer.lock().expect("event sink poisoned");
        let ok = writer
            .write_all(line.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .is_ok();
        if ok {
            self.events_written.fetch_add(1, Ordering::Relaxed);
        } else {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) {
        let mut writer = self.writer.lock().expect("event sink poisoned");
        if writer.flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.events_written.load(Ordering::Relaxed)
    }

    /// Writes that failed (disk full, closed pipe, ...).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl Drop for EventSink {
    fn drop(&mut self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.flush();
        }
    }
}

/// What [`validate_stream`] found in a well-formed stream.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Total event lines.
    pub events: u64,
    /// `Snapshot` lines.
    pub snapshots: u64,
    /// `Melt` lines.
    pub melts: u64,
    /// `HotGroup` lines.
    pub hot_group_events: u64,
    /// `Anomaly` lines.
    pub anomalies: u64,
    /// The leading `RunConfig` event.
    pub run_config: RunConfigEvent,
    /// The trailing `Summary` event.
    pub summary: SummaryEvent,
}

/// Parses a JSONL stream and checks its shape: every line is a valid
/// [`Event`], the first is `RunConfig`, the last is `Summary`, and both
/// carry a schema version this crate understands.
pub fn validate_stream(text: &str) -> Result<StreamSummary, String> {
    let mut events = 0u64;
    let mut snapshots = 0u64;
    let mut melts = 0u64;
    let mut hot_group_events = 0u64;
    let mut anomalies = 0u64;
    let mut run_config: Option<RunConfigEvent> = None;
    let mut summary: Option<SummaryEvent> = None;

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not a valid event: {e:?}", lineno + 1))?;
        if summary.is_some() {
            // A second Summary is a distinct corruption mode (two runs
            // concatenated, or a resumed run double-finishing) — name it
            // explicitly instead of the generic trailing-event error.
            if matches!(event, Event::Summary(_)) {
                return Err(format!("line {}: duplicate Summary", lineno + 1));
            }
            return Err(format!("line {}: event after Summary", lineno + 1));
        }
        match (&event, events) {
            (Event::RunConfig(_), 0) => {}
            (_, 0) => {
                return Err(format!(
                    "first event is {}, expected RunConfig",
                    event.kind()
                ))
            }
            (Event::RunConfig(_), _) => {
                return Err(format!("line {}: duplicate RunConfig", lineno + 1))
            }
            _ => {}
        }
        events += 1;
        match event {
            Event::RunConfig(c) => {
                if c.schema_version != crate::events::SCHEMA_VERSION {
                    return Err(format!(
                        "unsupported schema version {} (expected {})",
                        c.schema_version,
                        crate::events::SCHEMA_VERSION
                    ));
                }
                run_config = Some(c);
            }
            Event::Snapshot(_) => snapshots += 1,
            Event::Melt(_) => melts += 1,
            Event::HotGroup(_) => hot_group_events += 1,
            Event::Anomaly(_) => anomalies += 1,
            Event::Summary(s) => summary = Some(s),
        }
    }

    let run_config = run_config.ok_or_else(|| "stream is empty".to_string())?;
    let summary = summary.ok_or_else(|| "stream has no Summary event".to_string())?;
    Ok(StreamSummary {
        events,
        snapshots,
        melts,
        hot_group_events,
        anomalies,
        run_config,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{SnapshotEvent, SCHEMA_VERSION};
    use crate::phases::PhaseBreakdown;
    use crate::registry::MetricsSnapshot;

    fn config() -> RunConfigEvent {
        RunConfigEvent {
            schema_version: SCHEMA_VERSION,
            policy: "round-robin".into(),
            servers: 8,
            cores_per_server: 16,
            ticks: 10,
            tick_seconds: 60.0,
            seed: 1,
            threads: 1,
            has_wax: false,
            snapshot_every_ticks: 5,
        }
    }

    fn summary() -> SummaryEvent {
        SummaryEvent {
            schema_version: SCHEMA_VERSION,
            policy: "round-robin".into(),
            ticks_run: 10,
            wall_s: 0.1,
            ticks_per_s: 100.0,
            placements: 5,
            dropped_jobs: 0,
            peak_cooling_w: 1000.0,
            peak_electrical_w: 1000.0,
            final_melted_fraction: 0.0,
            write_errors: 0,
            anomalies: 0,
            phases: PhaseBreakdown::default(),
            scheduler: None,
            metrics: MetricsSnapshot::default(),
        }
    }

    fn snapshot(tick: u64) -> SnapshotEvent {
        SnapshotEvent {
            tick,
            sim_hours: tick as f64 / 60.0,
            jobs_in_flight: 1,
            utilization: 0.01,
            mean_air_c: 25.0,
            max_air_c: 26.0,
            melted_fraction: 0.0,
            hot_group_size: None,
        }
    }

    #[test]
    fn sink_writes_one_line_per_event_and_validates() {
        let buffer = SharedBuffer::new();
        let sink = EventSink::to_shared_buffer(&buffer);
        sink.emit(&Event::RunConfig(config()));
        sink.emit(&Event::Snapshot(snapshot(5)));
        sink.emit(&Event::Snapshot(snapshot(10)));
        sink.emit(&Event::Summary(summary()));
        assert_eq!(sink.events_written(), 4);
        assert_eq!(sink.write_errors(), 0);
        drop(sink); // flushes

        let text = buffer.contents();
        assert_eq!(text.lines().count(), 4);
        let stream = validate_stream(&text).unwrap();
        assert_eq!(stream.events, 4);
        assert_eq!(stream.snapshots, 2);
        assert_eq!(stream.melts, 0);
        assert_eq!(stream.run_config.policy, "round-robin");
        assert_eq!(stream.summary.ticks_run, 10);
    }

    #[test]
    fn stream_must_start_with_run_config() {
        let line = serde_json::to_string(&Event::Summary(summary())).unwrap();
        let err = validate_stream(&line).unwrap_err();
        assert!(err.contains("expected RunConfig"), "got: {err}");
    }

    #[test]
    fn stream_must_end_with_summary() {
        let line = serde_json::to_string(&Event::RunConfig(config())).unwrap();
        let err = validate_stream(&line).unwrap_err();
        assert!(err.contains("no Summary"), "got: {err}");
    }

    #[test]
    fn events_after_summary_are_rejected() {
        let text = [
            serde_json::to_string(&Event::RunConfig(config())).unwrap(),
            serde_json::to_string(&Event::Summary(summary())).unwrap(),
            serde_json::to_string(&Event::Snapshot(snapshot(11))).unwrap(),
        ]
        .join("\n");
        let err = validate_stream(&text).unwrap_err();
        assert!(err.contains("after Summary"), "got: {err}");
    }

    #[test]
    fn duplicate_summaries_are_rejected() {
        let text = [
            serde_json::to_string(&Event::RunConfig(config())).unwrap(),
            serde_json::to_string(&Event::Summary(summary())).unwrap(),
            serde_json::to_string(&Event::Summary(summary())).unwrap(),
        ]
        .join("\n");
        let err = validate_stream(&text).unwrap_err();
        assert!(err.contains("duplicate Summary"), "got: {err}");
        assert!(err.starts_with("line 3:"), "got: {err}");
    }

    #[test]
    fn garbage_lines_are_rejected_with_line_numbers() {
        let text = format!(
            "{}\nnot json\n",
            serde_json::to_string(&Event::RunConfig(config())).unwrap()
        );
        let err = validate_stream(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        // Simulate a crash mid-write: the last line is cut in half.
        let full = [
            serde_json::to_string(&Event::RunConfig(config())).unwrap(),
            serde_json::to_string(&Event::Snapshot(snapshot(5))).unwrap(),
            serde_json::to_string(&Event::Summary(summary())).unwrap(),
        ]
        .join("\n");
        let cut = &full[..full.len() - 30];
        let err = validate_stream(cut).unwrap_err();
        assert!(err.starts_with("line 3:"), "got: {err}");

        // Truncation that drops whole lines (no Summary) is also caught.
        let whole_lines: String = full.lines().take(2).collect::<Vec<_>>().join("\n");
        let err = validate_stream(&whole_lines).unwrap_err();
        assert!(err.contains("no Summary"), "got: {err}");
    }

    #[test]
    fn mid_line_corruption_is_rejected_with_its_line_number() {
        // A valid stream whose middle line was bit-flipped into invalid
        // JSON (truncated object brace).
        let snapshot_line = serde_json::to_string(&Event::Snapshot(snapshot(5))).unwrap();
        let corrupted = snapshot_line.replace("\"tick\":5", "\"tick\":,");
        let text = [
            serde_json::to_string(&Event::RunConfig(config())).unwrap(),
            corrupted,
            serde_json::to_string(&Event::Summary(summary())).unwrap(),
        ]
        .join("\n");
        let err = validate_stream(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");

        // Corruption that stays valid JSON but breaks the schema (wrong
        // field type) is caught the same way.
        let wrong_type = snapshot_line.replace("\"tick\":5", "\"tick\":\"five\"");
        let text = [
            serde_json::to_string(&Event::RunConfig(config())).unwrap(),
            wrong_type,
            serde_json::to_string(&Event::Summary(summary())).unwrap(),
        ]
        .join("\n");
        let err = validate_stream(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
    }

    #[test]
    fn anomaly_lines_are_counted() {
        let anomaly = Event::Anomaly(crate::watchdog::AnomalyEvent {
            tick: 7,
            watchdog: crate::watchdog::WatchdogKind::GroupThrash,
            server: None,
            value: 5.0,
            threshold: 3.0,
            detail: "thrash".into(),
        });
        let text = [
            serde_json::to_string(&Event::RunConfig(config())).unwrap(),
            serde_json::to_string(&anomaly).unwrap(),
            serde_json::to_string(&Event::Summary(summary())).unwrap(),
        ]
        .join("\n");
        let stream = validate_stream(&text).unwrap();
        assert_eq!(stream.anomalies, 1);
    }

    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir().join("vmt-telemetry-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("run-{}.jsonl", std::process::id()));
        let sink = EventSink::to_file(&path).unwrap();
        sink.emit(&Event::RunConfig(config()));
        sink.emit(&Event::Summary(summary()));
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(validate_stream(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
