//! The human-readable end-of-run report.

use crate::events::SummaryEvent;
use std::fmt::Write as _;

/// Renders a [`SummaryEvent`] as a multi-line report for humans — the
/// counterpart of the machine-readable JSONL summary line.
pub fn render_report(summary: &SummaryEvent) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== run report: {} ===", summary.policy);
    let _ = writeln!(
        out,
        "ticks        {} in {:.2}s wall ({:.0} ticks/s)",
        summary.ticks_run, summary.wall_s, summary.ticks_per_s
    );
    let _ = writeln!(
        out,
        "jobs         {} placed, {} dropped",
        summary.placements, summary.dropped_jobs
    );
    let _ = writeln!(
        out,
        "peaks        cooling {:.1} kW, electrical {:.1} kW",
        summary.peak_cooling_w / 1e3,
        summary.peak_electrical_w / 1e3
    );
    let _ = writeln!(
        out,
        "wax          {:.1}% of servers melted at end of run",
        summary.final_melted_fraction * 100.0
    );
    if summary.anomalies > 0 {
        let _ = writeln!(
            out,
            "watchdogs    {} anomalies fired (see Anomaly events)",
            summary.anomalies
        );
    }
    if summary.write_errors > 0 {
        let _ = writeln!(
            out,
            "WARNING      {} event-sink write errors — the stream is incomplete",
            summary.write_errors
        );
    }

    let phases = &summary.phases;
    if phases.ticks > 0 {
        let _ = writeln!(out, "--- tick phases ({} ticks) ---", phases.ticks);
        // A zero measured tick total (a coarse clock, or a zero-tick
        // run) must not divide through to NaN/inf percentages; report
        // such rows as 0.0% of an unmeasured total instead.
        let total = phases.total_s;
        for (label, seconds) in phases.rows() {
            let percent = if total > 0.0 {
                seconds / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(out, "  {label:<14} {seconds:>8.3}s  {percent:>5.1}%");
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>8.3}s  (inside physics)",
            "fold", phases.fold_s
        );
        if let Some(efficiency) = phases.pool_efficiency() {
            let _ = writeln!(
                out,
                "  {:<14} {:>8.3}s busy / {:.3}s idle  ({:.1}% pool efficiency)",
                "pool",
                phases.pool_busy_s,
                phases.pool_idle_s,
                efficiency * 100.0
            );
        }
        let _ = writeln!(
            out,
            "  phase coverage {:.1}% of {:.3}s measured tick time",
            phases.coverage() * 100.0,
            phases.total_s
        );
    }

    if let Some(s) = &summary.scheduler {
        let _ = writeln!(out, "--- scheduler ---");
        let _ = writeln!(
            out,
            "  placements {} (hot {}, cold {}, spills {})",
            s.placements, s.hot_placements, s.cold_placements, s.spills
        );
        let _ = writeln!(
            out,
            "  hot group  +{} / -{} resizes, {} kept warm",
            s.hot_group_growth, s.hot_group_shrink, s.keep_warm
        );
        let _ = writeln!(out, "  wax        {} threshold crossings", s.wax_crossings);
    }

    let metrics = &summary.metrics;
    if !metrics.counters.is_empty() || !metrics.gauges.is_empty() || !metrics.histograms.is_empty()
    {
        let _ = writeln!(out, "--- metrics ---");
        let mut names: Vec<&String> = metrics.counters.keys().collect();
        names.sort();
        for name in names {
            let _ = writeln!(out, "  {name} = {}", metrics.counters[name]);
        }
        let mut names: Vec<&String> = metrics.gauges.keys().collect();
        names.sort();
        for name in names {
            let _ = writeln!(out, "  {name} = {:.4}", metrics.gauges[name]);
        }
        let mut names: Vec<&String> = metrics.histograms.keys().collect();
        names.sort();
        for name in names {
            let h = &metrics.histograms[name];
            let _ = writeln!(
                out,
                "  {name}: n={} mean={:.3} p50<={} p99<={}",
                h.total,
                h.mean(),
                h.quantile_bound(0.50),
                h.quantile_bound(0.99)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{SchedulerCounters, SCHEMA_VERSION};
    use crate::phases::PhaseBreakdown;
    use crate::registry::MetricsSnapshot;

    #[test]
    fn report_covers_every_section() {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("engine.melt_events".into(), 4);
        metrics.gauges.insert("cluster.utilization".into(), 0.5);
        let summary = SummaryEvent {
            schema_version: SCHEMA_VERSION,
            policy: "vmt-wa(gv=8)".into(),
            ticks_run: 2880,
            wall_s: 2.0,
            ticks_per_s: 1440.0,
            placements: 100,
            dropped_jobs: 1,
            peak_cooling_w: 250_000.0,
            peak_electrical_w: 260_000.0,
            final_melted_fraction: 0.125,
            write_errors: 2,
            anomalies: 1,
            phases: PhaseBreakdown {
                physics_s: 1.2,
                placement_s: 0.4,
                fold_s: 0.1,
                total_s: 1.8,
                ticks: 2880,
                ..PhaseBreakdown::default()
            },
            scheduler: Some(SchedulerCounters {
                placements: 100,
                hot_placements: 70,
                cold_placements: 30,
                hot_group_growth: 3,
                ..SchedulerCounters::default()
            }),
            metrics,
        };
        let report = render_report(&summary);
        for needle in [
            "run report: vmt-wa(gv=8)",
            "2880 in 2.00s wall (1440 ticks/s)",
            "100 placed, 1 dropped",
            "cooling 250.0 kW",
            "12.5% of servers melted",
            "tick phases (2880 ticks)",
            "physics",
            "phase coverage",
            "hot 70, cold 30",
            "engine.melt_events = 4",
            "cluster.utilization = 0.5000",
            "1 anomalies fired",
            "2 event-sink write errors",
        ] {
            assert!(
                report.contains(needle),
                "report missing {needle:?}:\n{report}"
            );
        }
    }

    #[test]
    fn zero_measured_time_emits_no_nan_or_inf() {
        // A coarse clock can report ticks > 0 with per-phase seconds
        // accumulated but a zero total; percentages must stay finite.
        let summary = SummaryEvent {
            schema_version: SCHEMA_VERSION,
            policy: "vmt-wa(gv=8)".into(),
            ticks_run: 10,
            wall_s: 0.0,
            ticks_per_s: 0.0,
            placements: 0,
            dropped_jobs: 0,
            peak_cooling_w: 0.0,
            peak_electrical_w: 0.0,
            final_melted_fraction: 0.0,
            write_errors: 0,
            anomalies: 0,
            phases: PhaseBreakdown {
                physics_s: 0.001,
                ticks: 10,
                total_s: 0.0,
                ..PhaseBreakdown::default()
            },
            scheduler: None,
            metrics: MetricsSnapshot::default(),
        };
        let report = render_report(&summary);
        assert!(report.contains("tick phases (10 ticks)"), "{report}");
        assert!(!report.contains("inf"), "{report}");
        assert!(!report.contains("NaN"), "{report}");
    }

    #[test]
    fn empty_sections_are_omitted() {
        let summary = SummaryEvent {
            schema_version: SCHEMA_VERSION,
            policy: "round-robin".into(),
            ticks_run: 1,
            wall_s: 0.0,
            ticks_per_s: 0.0,
            placements: 0,
            dropped_jobs: 0,
            peak_cooling_w: 0.0,
            peak_electrical_w: 0.0,
            final_melted_fraction: 0.0,
            write_errors: 0,
            anomalies: 0,
            phases: PhaseBreakdown::default(),
            scheduler: None,
            metrics: MetricsSnapshot::default(),
        };
        let report = render_report(&summary);
        assert!(!report.contains("scheduler"));
        assert!(!report.contains("metrics"));
        assert!(!report.contains("tick phases"));
        assert!(!report.contains("write errors"));
        assert!(!report.contains("anomalies"));
    }
}
