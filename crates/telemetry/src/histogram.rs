//! Fixed-bucket, lock-free histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram over fixed bucket boundaries.
///
/// Buckets are defined by a sorted slice of inclusive upper bounds; a
/// value `v` lands in the first bucket whose bound satisfies
/// `v <= bound`, and values above the last bound land in an implicit
/// overflow bucket. The boundary layout is fixed at construction, so
/// recording is a branch-free-ish linear probe over a handful of bounds
/// plus one relaxed atomic increment — no locks, no allocation, safe to
/// call from any thread.
///
/// # Examples
///
/// ```
/// use vmt_telemetry::Histogram;
///
/// let h = Histogram::with_buckets(vec![1.0, 10.0, 100.0]);
/// h.record(0.5);
/// h.record(10.0); // exactly on a bound -> that bucket (inclusive)
/// h.record(1e9);  // overflow bucket
/// let snap = h.snapshot();
/// assert_eq!(snap.counts, vec![1, 1, 0, 1]);
/// assert_eq!(snap.total, 3);
/// ```
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, sorted ascending.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Running sum of recorded values (f64 bits, relaxed; used for the
    /// mean in reports — small races in the read are acceptable there).
    sum_bits: AtomicU64,
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending; `counts` has one extra
    /// (overflow) entry.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of recorded values.
    pub total: u64,
    /// Sum of recorded values.
    pub sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, unsorted, or contains a non-finite
    /// value — boundary layout bugs should fail loudly at registration,
    /// not corrupt counts at record time.
    pub fn with_buckets(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Exponential bounds `start, start*factor, ...` (`count` of them) —
    /// the usual layout for latency-style quantities.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Self::with_buckets(bounds)
    }

    /// Index of the bucket `value` falls into (`bounds.len()` for
    /// overflow). NaN counts as overflow.
    pub fn bucket_for(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    /// Records one value. Lock-free: one relaxed increment plus a
    /// relaxed compare-exchange loop for the running sum.
    pub fn record(&self, value: f64) {
        let idx = self.bucket_for(value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Copies out the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total = counts.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            total,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1);
    /// `f64::INFINITY` when it lands in the overflow bucket, 0 when
    /// empty. Coarse by construction — resolution is the bucket layout.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_on_boundaries_are_inclusive() {
        let h = Histogram::with_buckets(vec![1.0, 2.0, 4.0]);
        // Exactly on each bound -> that bucket, not the next.
        h.record(1.0);
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.snapshot().counts, vec![1, 1, 1, 0]);
    }

    #[test]
    fn below_first_and_above_last() {
        let h = Histogram::with_buckets(vec![10.0, 20.0]);
        h.record(-5.0); // below first bound -> first bucket
        h.record(20.000001); // just past the last bound -> overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 0, 1]);
        assert_eq!(s.total, 2);
    }

    #[test]
    fn interior_values_pick_the_right_bucket() {
        let h = Histogram::with_buckets(vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(h.bucket_for(0.5), 0);
        assert_eq!(h.bucket_for(1.5), 1);
        assert_eq!(h.bucket_for(3.999), 2);
        assert_eq!(h.bucket_for(7.0), 3);
        assert_eq!(h.bucket_for(9.0), 4);
        assert_eq!(h.bucket_for(f64::NAN), 4);
    }

    #[test]
    fn exponential_layout() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        let s = h.snapshot();
        assert_eq!(s.bounds, vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(s.counts.len(), 5);
    }

    #[test]
    fn mean_and_quantiles() {
        let h = Histogram::with_buckets(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 0.5, 5.0, 50.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!((s.mean() - 14.0).abs() < 1e-12);
        assert_eq!(s.quantile_bound(0.5), 1.0);
        assert_eq!(s.quantile_bound(1.0), 100.0);
        h.record(1e9);
        assert_eq!(h.snapshot().quantile_bound(1.0), f64::INFINITY);
    }

    #[test]
    fn empty_snapshot() {
        let s = Histogram::with_buckets(vec![1.0]).snapshot();
        assert_eq!(s.total, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bound(0.99), 0.0);
    }

    #[test]
    fn quantile_bound_extremes() {
        // Empty histogram: every quantile, including the extremes, is 0.
        let empty = Histogram::with_buckets(vec![1.0, 10.0]).snapshot();
        assert_eq!(empty.quantile_bound(0.0), 0.0);
        assert_eq!(empty.quantile_bound(1.0), 0.0);

        // Non-empty: q=0.0 clamps to rank 1 (the smallest recorded
        // value's bucket), q=1.0 is the largest value's bucket, and
        // out-of-range q clamps rather than indexing out of bounds.
        let h = Histogram::with_buckets(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(0.0), 1.0);
        assert_eq!(s.quantile_bound(1.0), 100.0);
        assert_eq!(s.quantile_bound(-3.0), s.quantile_bound(0.0));
        assert_eq!(s.quantile_bound(7.0), s.quantile_bound(1.0));

        // A single sample answers every quantile with its own bucket.
        let one = Histogram::with_buckets(vec![2.0]);
        one.record(1.0);
        let s = one.snapshot();
        assert_eq!(s.quantile_bound(0.0), 2.0);
        assert_eq!(s.quantile_bound(1.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bounds() {
        Histogram::with_buckets(vec![2.0, 1.0]);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::with_buckets(vec![10.0, 100.0]));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 37 + i) as f64 % 150.0);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().total, 4000);
    }
}
