//! Per-phase tick profiling.

use std::time::Duration;

/// The phases of one simulation tick, in execution order.
///
/// `PhysicsFold`, `PoolBusy`, and `PoolIdle` are *sub-phases*: their
/// time is contained inside top-level phases (the fold inside
/// `Physics`; the pool attributions inside whichever phases ran on the
/// persistent worker pool), so they are reported separately but
/// excluded from coverage sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TickPhase {
    /// Time-varying inlet refresh.
    Inlet,
    /// Draining the departure calendar.
    Departures,
    /// The scheduler's per-tick refresh (`on_tick_indexed`).
    SchedulerTick,
    /// Arrival planning and per-job placement.
    Placement,
    /// The sharded physics sweep (includes the fold).
    Physics,
    /// Shard-order fold of the sweep's partial sums (inside `Physics`).
    PhysicsFold,
    /// Cluster metric recording (series pushes, heatmap rows).
    Record,
    /// Summed busy time of the persistent pool's participants across
    /// the tick's pooled sections (sub-phase; zero on the inline
    /// single-thread path).
    PoolBusy,
    /// Summed idle time of the pool's participants within the pooled
    /// sections' wall-clock spans (sub-phase).
    PoolIdle,
}

impl TickPhase {
    /// Top-level phases, in execution order (excludes sub-phases).
    pub const TOP_LEVEL: [TickPhase; 6] = [
        TickPhase::Inlet,
        TickPhase::Departures,
        TickPhase::SchedulerTick,
        TickPhase::Placement,
        TickPhase::Physics,
        TickPhase::Record,
    ];

    /// Stable display name (used as the span name in trace exports).
    pub fn name(self) -> &'static str {
        match self {
            TickPhase::Inlet => "Inlet",
            TickPhase::Departures => "Departures",
            TickPhase::SchedulerTick => "SchedulerTick",
            TickPhase::Placement => "Placement",
            TickPhase::Physics => "Physics",
            TickPhase::PhysicsFold => "PhysicsFold",
            TickPhase::Record => "Record",
            TickPhase::PoolBusy => "PoolBusy",
            TickPhase::PoolIdle => "PoolIdle",
        }
    }

    fn slot(self) -> usize {
        match self {
            TickPhase::Inlet => 0,
            TickPhase::Departures => 1,
            TickPhase::SchedulerTick => 2,
            TickPhase::Placement => 3,
            TickPhase::Physics => 4,
            TickPhase::PhysicsFold => 5,
            TickPhase::Record => 6,
            TickPhase::PoolBusy => 7,
            TickPhase::PoolIdle => 8,
        }
    }
}

const SLOTS: usize = 9;

/// Accumulates wall-clock time per [`TickPhase`].
///
/// Owned and written by the engine thread only: plain `u64` nanosecond
/// totals, no atomics, no allocation after construction. The engine
/// times each phase with `std::time::Instant` *only when telemetry is
/// enabled*, so a disabled simulation takes zero timestamps.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    totals_ns: [u64; SLOTS],
    /// Whole-tick-body time, measured around all phases; the coverage
    /// denominator.
    tick_total_ns: u64,
    ticks: u64,
}

/// Wall-clock attribution of a run's tick time, in seconds.
///
/// `coverage` is the fraction of the measured whole-tick time the
/// top-level phases account for; the remainder is loop scaffolding
/// between the phase timestamps. `fold_s` is a sub-phase of
/// `physics_s`, reported separately and excluded from the sum.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct PhaseBreakdown {
    /// Time-varying inlet refresh.
    pub inlet_s: f64,
    /// Departure-calendar drain.
    pub departures_s: f64,
    /// Scheduler per-tick refresh.
    pub scheduler_tick_s: f64,
    /// Arrival planning + placement.
    pub placement_s: f64,
    /// Sharded physics sweep (includes the fold).
    pub physics_s: f64,
    /// Shard-order fold inside the physics sweep.
    pub fold_s: f64,
    /// Metric recording.
    pub record_s: f64,
    /// Summed participant busy time across the pooled sections
    /// (sub-phase; absent in pre-pool streams, hence the default).
    #[serde(default)]
    pub pool_busy_s: f64,
    /// Summed participant idle time within the pooled sections'
    /// wall-clock spans (sub-phase).
    #[serde(default)]
    pub pool_idle_s: f64,
    /// Whole-tick-body time (coverage denominator).
    pub total_s: f64,
    /// Ticks profiled.
    pub ticks: u64,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to `phase`.
    #[inline]
    pub fn add(&mut self, phase: TickPhase, elapsed: Duration) {
        self.totals_ns[phase.slot()] += elapsed.as_nanos() as u64;
    }

    /// Adds raw nanoseconds to `phase` (for timings measured elsewhere,
    /// e.g. the farm's in-sweep fold timer).
    #[inline]
    pub fn add_ns(&mut self, phase: TickPhase, ns: u64) {
        self.totals_ns[phase.slot()] += ns;
    }

    /// Records one whole-tick-body duration (the coverage denominator).
    #[inline]
    pub fn add_tick(&mut self, elapsed: Duration) {
        self.tick_total_ns += elapsed.as_nanos() as u64;
        self.ticks += 1;
    }

    /// Accumulated time in `phase`.
    pub fn total(&self, phase: TickPhase) -> Duration {
        Duration::from_nanos(self.totals_ns[phase.slot()])
    }

    /// Ticks profiled so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Folds the totals into a serializable breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        let s = |p: TickPhase| self.totals_ns[p.slot()] as f64 / 1e9;
        PhaseBreakdown {
            inlet_s: s(TickPhase::Inlet),
            departures_s: s(TickPhase::Departures),
            scheduler_tick_s: s(TickPhase::SchedulerTick),
            placement_s: s(TickPhase::Placement),
            physics_s: s(TickPhase::Physics),
            fold_s: s(TickPhase::PhysicsFold),
            record_s: s(TickPhase::Record),
            pool_busy_s: s(TickPhase::PoolBusy),
            pool_idle_s: s(TickPhase::PoolIdle),
            total_s: self.tick_total_ns as f64 / 1e9,
            ticks: self.ticks,
        }
    }
}

impl PhaseBreakdown {
    /// Fraction of the pooled sections' aggregate participant time
    /// spent busy — the pool's efficiency. `None` when the pool never
    /// engaged (single-thread runs).
    pub fn pool_efficiency(&self) -> Option<f64> {
        let total = self.pool_busy_s + self.pool_idle_s;
        (total > 0.0).then(|| self.pool_busy_s / total)
    }

    /// Sum of the top-level phase times (excludes the fold sub-phase).
    pub fn phases_sum_s(&self) -> f64 {
        self.inlet_s
            + self.departures_s
            + self.scheduler_tick_s
            + self.placement_s
            + self.physics_s
            + self.record_s
    }

    /// Fraction of the measured tick time the phases account for
    /// (1.0 when no ticks were profiled, so an empty profile does not
    /// read as a coverage failure).
    pub fn coverage(&self) -> f64 {
        if self.total_s <= 0.0 {
            1.0
        } else {
            self.phases_sum_s() / self.total_s
        }
    }

    /// `(label, seconds)` rows for the top-level phases, in execution
    /// order — shared by the human report and the bench printout.
    pub fn rows(&self) -> [(&'static str, f64); 6] {
        [
            ("inlet", self.inlet_s),
            ("departures", self.departures_s),
            ("scheduler_tick", self.scheduler_tick_s),
            ("placement", self.placement_s),
            ("physics", self.physics_s),
            ("record", self.record_s),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_phase() {
        let mut p = PhaseProfiler::new();
        p.add(TickPhase::Physics, Duration::from_millis(3));
        p.add(TickPhase::Physics, Duration::from_millis(2));
        p.add_ns(TickPhase::PhysicsFold, 1_000_000);
        p.add_tick(Duration::from_millis(6));
        let b = p.breakdown();
        assert!((b.physics_s - 0.005).abs() < 1e-9);
        assert!((b.fold_s - 0.001).abs() < 1e-9);
        assert_eq!(b.ticks, 1);
        // Fold is inside physics: excluded from the top-level sum.
        assert!((b.phases_sum_s() - 0.005).abs() < 1e-9);
        assert!((b.coverage() - 0.005 / 0.006).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_has_full_coverage() {
        assert_eq!(PhaseProfiler::new().breakdown().coverage(), 1.0);
    }

    #[test]
    fn rows_cover_all_top_level_phases() {
        let b = PhaseBreakdown {
            inlet_s: 1.0,
            departures_s: 2.0,
            scheduler_tick_s: 3.0,
            placement_s: 4.0,
            physics_s: 5.0,
            fold_s: 0.5,
            record_s: 6.0,
            pool_busy_s: 0.3,
            pool_idle_s: 0.1,
            total_s: 21.0,
            ticks: 10,
        };
        let sum: f64 = b.rows().iter().map(|(_, s)| s).sum();
        assert_eq!(sum, b.phases_sum_s());
        assert_eq!(b.rows().len(), TickPhase::TOP_LEVEL.len());
    }
}
