//! Property test: the OpenMetrics writer and strict parser are exact
//! inverses over anything a [`MetricsRegistry`] can hold — counters,
//! gauges (plain and zone-labelled), histograms, and series — and the
//! writer is deterministic (equal snapshots render byte-identically).

use proptest::prelude::*;
use vmt_telemetry::{parse_openmetrics, render_openmetrics, MetricKind, MetricsRegistry};

/// Splitmix-style mixer. The vendored proptest draws primitives only,
/// so each case draws one seed plus shape counts and fans the seed out
/// into metric values here.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A finite float across signs and magnitudes.
    fn float(&mut self) -> f64 {
        let mant = (self.next() % 2_000_001) as f64 - 1_000_000.0;
        let scale = [1e-6, 1e-3, 1.0, 1e3, 1e9][self.below(5) as usize];
        mant * scale
    }
}

/// Distinct zone-label values, including characters that stress the
/// exposition grammar (dash, space, non-ASCII) without needing escape
/// sequences inside the registry name itself — the escaper's own
/// round-trip is pinned by a unit test in `openmetrics.rs`.
const ZONES: [&str; 4] = ["z0", "rack-a", "north 9", "θ-aisle"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `parse_openmetrics(render_openmetrics(snapshot))` succeeds and
    /// reads back every family with the right kind, sample shape, and
    /// values, for arbitrary registry contents.
    #[test]
    fn writer_parser_round_trip(
        seed in 0u64..u64::MAX,
        counters in 0usize..5,
        gauges in 0usize..5,
        zoned in 0usize..5,
        hists in 0usize..4,
        series in 0usize..4,
    ) {
        let mut mix = Mix(seed);
        let registry = MetricsRegistry::new();

        let mut counter_vals = Vec::new();
        for i in 0..counters {
            let v = mix.below(1 << 40);
            registry.counter(&format!("jobs_{i}")).add(v);
            counter_vals.push(v);
        }

        let mut gauge_vals = Vec::new();
        for i in 0..gauges {
            let v = mix.float();
            registry.gauge(&format!("load_{i}")).set(v);
            gauge_vals.push(v);
        }

        let mut zone_vals = Vec::new();
        for (i, zone) in ZONES.iter().take(zoned).enumerate() {
            let v = mix.float();
            registry
                .gauge(&format!("zone.temp_c{{zone=\"{zone}\"}}"))
                .set(v);
            zone_vals.push((ZONES[i], v));
        }

        let mut hist_shapes = Vec::new();
        for i in 0..hists {
            let n_bounds = 1 + mix.below(4) as usize;
            let mut bounds = Vec::new();
            let mut edge = 0.0;
            for _ in 0..n_bounds {
                edge += 0.5 + mix.below(1000) as f64 / 100.0;
                bounds.push(edge);
            }
            let h = registry.histogram(&format!("lat_{i}"), &bounds);
            let records = mix.below(20);
            for _ in 0..records {
                // Spread across buckets and past the last bound.
                h.record(mix.below(1 + 2 * edge as u64) as f64);
            }
            hist_shapes.push((n_bounds, records));
        }

        let mut series_last = Vec::new();
        for i in 0..series {
            let s = registry.series(&format!("ts_{i}"), 4);
            let pushes = mix.below(7);
            let mut last = None;
            for tick in 0..pushes {
                let v = mix.float();
                s.push(tick, v);
                last = Some(v);
            }
            series_last.push(last);
        }

        let snapshot = registry.snapshot();
        let help = [
            ("jobs_0", "Placed jobs."),
            ("zone_temp_c", "Per-zone inlet, line one\nline two\\slash"),
        ];
        let text = render_openmetrics(&snapshot, &help);

        // The writer is deterministic: equal snapshots, equal bytes.
        prop_assert_eq!(&text, &render_openmetrics(&snapshot, &help));

        let parsed = match parse_openmetrics(&text) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}\n{text}"))),
        };

        let expected_families =
            counters + gauges + hists + series + usize::from(zoned > 0);
        prop_assert_eq!(parsed.families.len(), expected_families);

        for (i, v) in counter_vals.iter().enumerate() {
            let fam = parsed.family(&format!("jobs_{i}")).expect("counter family");
            prop_assert_eq!(fam.kind, MetricKind::Counter);
            prop_assert_eq!(fam.samples.len(), 1);
            prop_assert_eq!(fam.samples[0].name, format!("jobs_{i}_total"));
            // Counts stay under 2^53, so the f64 round-trip is exact.
            prop_assert_eq!(fam.samples[0].value, *v as f64);
        }

        for (i, v) in gauge_vals.iter().enumerate() {
            let fam = parsed.family(&format!("load_{i}")).expect("gauge family");
            prop_assert_eq!(fam.kind, MetricKind::Gauge);
            prop_assert_eq!(fam.samples.len(), 1);
            // Rust float Display is shortest-round-trip, so parsing the
            // rendered text recovers the value bit-for-bit.
            prop_assert_eq!(fam.samples[0].value, *v);
        }

        if zoned > 0 {
            let fam = parsed.family("zone_temp_c").expect("zoned family");
            prop_assert_eq!(fam.kind, MetricKind::Gauge);
            prop_assert_eq!(fam.samples.len(), zone_vals.len());
            // HELP survives with escapes intact (`\n` / `\\` stay
            // escaped on the wire; the parser does not unescape help).
            prop_assert_eq!(
                fam.help.as_deref(),
                Some("Per-zone inlet, line one\\nline two\\\\slash")
            );
            for (zone, v) in &zone_vals {
                let sample = fam
                    .samples
                    .iter()
                    .find(|s| s.labels == [("zone".to_owned(), (*zone).to_owned())])
                    .expect("zone sample");
                prop_assert_eq!(sample.value, *v);
            }
        }

        for (i, (n_bounds, records)) in hist_shapes.iter().enumerate() {
            let fam = parsed.family(&format!("lat_{i}")).expect("histogram family");
            prop_assert_eq!(fam.kind, MetricKind::Histogram);
            // `n_bounds` finite buckets, the +Inf bucket, `_sum`, `_count`.
            prop_assert_eq!(fam.samples.len(), *n_bounds + 3);
            let mut prev = 0.0;
            for bucket in &fam.samples[..*n_bounds + 1] {
                prop_assert!(bucket.name.ends_with("_bucket"));
                prop_assert!(bucket.value >= prev, "buckets must be cumulative");
                prev = bucket.value;
            }
            let inf = &fam.samples[*n_bounds];
            prop_assert_eq!(inf.labels.last().cloned(), Some(("le".to_owned(), "+Inf".to_owned())));
            prop_assert_eq!(inf.value, *records as f64);
            let count = fam.samples.last().expect("count sample");
            prop_assert_eq!(count.name, format!("lat_{i}_count"));
            prop_assert_eq!(count.value, *records as f64);
        }

        for (i, last) in series_last.iter().enumerate() {
            let fam = parsed.family(&format!("ts_{i}")).expect("series family");
            // Series scrape as gauges carrying their newest sample; an
            // empty window scrapes as NaN.
            prop_assert_eq!(fam.kind, MetricKind::Gauge);
            prop_assert_eq!(fam.samples.len(), 1);
            match last {
                Some(v) => prop_assert_eq!(fam.samples[0].value, *v),
                None => prop_assert!(fam.samples[0].value.is_nan()),
            }
        }
    }
}
