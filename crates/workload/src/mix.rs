//! How cluster load is split across the workload catalog.

use crate::{VmtClass, WorkloadKind};
use core::fmt;

/// Error returned when constructing an invalid [`WorkloadMix`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum MixError {
    /// The shares did not sum to 1 (within tolerance).
    SharesNotNormalized {
        /// The actual sum of the provided shares.
        sum: f64,
    },
    /// A share was negative or non-finite.
    InvalidShare {
        /// The workload with the bad share.
        kind: WorkloadKind,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixError::SharesNotNormalized { sum } => {
                write!(f, "workload shares must sum to 1, got {sum}")
            }
            MixError::InvalidShare { kind, value } => {
                write!(
                    f,
                    "share for {kind} must be a non-negative finite number, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for MixError {}

/// A split of total cluster core-load across the five workloads.
///
/// Shares are fractions of occupied cores (not of power), and must sum
/// to 1.
///
/// # Examples
///
/// ```
/// use vmt_workload::{WorkloadKind, WorkloadMix};
///
/// let mix = WorkloadMix::paper_default();
/// assert!((mix.share(WorkloadKind::DataCaching) - 0.30).abs() < 1e-12);
/// // Per-core power of the blended load:
/// assert!((mix.mean_core_power().get() - 4.34).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadMix {
    /// Shares indexed by [`WorkloadKind::index`].
    shares: [f64; 5],
}

impl WorkloadMix {
    /// Creates a mix from per-workload shares.
    ///
    /// # Errors
    ///
    /// Returns [`MixError`] if any share is negative/non-finite or the
    /// shares do not sum to 1 within `1e-9`.
    pub fn new(shares: [(WorkloadKind, f64); 5]) -> Result<Self, MixError> {
        let mut dense = [f64::NAN; 5];
        for (kind, share) in shares {
            if !(share.is_finite() && share >= 0.0) {
                return Err(MixError::InvalidShare { kind, value: share });
            }
            dense[kind.index()] = share;
        }
        let sum: f64 = dense.iter().sum();
        if !(sum.is_finite() && (sum - 1.0).abs() < 1e-9) {
            return Err(MixError::SharesNotNormalized { sum });
        }
        Ok(Self { shares: dense })
    }

    /// A mix of exactly two workloads at a given ratio of the first.
    ///
    /// Used by the paper's Figure 1, which sweeps pairwise mixes across
    /// the full work-ratio range.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `[0, 1]` or the two kinds are equal.
    pub fn pair(a: WorkloadKind, b: WorkloadKind, ratio_of_a: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio_of_a), "ratio must be in [0,1]");
        assert!(a != b, "pair requires two distinct workloads");
        let mut shares = [0.0; 5];
        shares[a.index()] = ratio_of_a;
        shares[b.index()] = 1.0 - ratio_of_a;
        Self { shares }
    }

    /// The paper's evaluation mix: a ≈60/40 hot/cold split of core-load.
    ///
    /// Shares: WebSearch 25%, DataCaching 30%, VideoEncoding 15%,
    /// VirusScan 10%, Clustering 20% → hot (search+video+clustering) = 60%.
    pub fn paper_default() -> Self {
        Self::new([
            (WorkloadKind::WebSearch, 0.25),
            (WorkloadKind::DataCaching, 0.30),
            (WorkloadKind::VideoEncoding, 0.15),
            (WorkloadKind::VirusScan, 0.10),
            (WorkloadKind::Clustering, 0.20),
        ])
        .expect("paper mix is normalized")
    }

    /// Share of total core-load belonging to `kind`.
    pub fn share(&self, kind: WorkloadKind) -> f64 {
        self.shares[kind.index()]
    }

    /// Iterates `(kind, share)` pairs in Table I order.
    pub fn iter(&self) -> impl Iterator<Item = (WorkloadKind, f64)> + '_ {
        WorkloadKind::ALL.iter().map(|&k| (k, self.share(k)))
    }

    /// Fraction of core-load classified hot (Table I classes).
    pub fn hot_fraction(&self) -> f64 {
        self.iter()
            .filter(|(k, _)| k.vmt_class() == VmtClass::Hot)
            .map(|(_, s)| s)
            .sum()
    }

    /// Mean per-core power of the blended load.
    pub fn mean_core_power(&self) -> vmt_units::Watts {
        self.iter().map(|(k, s)| k.core_power() * s).sum()
    }

    /// Mean per-core power of only the hot (or only the cold) component,
    /// normalized within that component. Returns zero power when the
    /// component has no share.
    pub fn component_core_power(&self, class: VmtClass) -> vmt_units::Watts {
        let total: f64 = self
            .iter()
            .filter(|(k, _)| k.vmt_class() == class)
            .map(|(_, s)| s)
            .sum();
        if total == 0.0 {
            return vmt_units::Watts::ZERO;
        }
        self.iter()
            .filter(|(k, _)| k.vmt_class() == class)
            .map(|(k, s)| k.core_power() * (s / total))
            .sum()
    }
}

impl Default for WorkloadMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_mix_is_sixty_forty() {
        let mix = WorkloadMix::paper_default();
        assert!((mix.hot_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mean_core_power_matches_hand_calculation() {
        let mix = WorkloadMix::paper_default();
        let expect = 0.25 * 4.65 + 0.30 * 1.6875 + 0.15 * 7.6125 + 0.10 * 0.425 + 0.20 * 7.4375;
        assert!((mix.mean_core_power().get() - expect).abs() < 1e-12);
    }

    #[test]
    fn component_powers() {
        let mix = WorkloadMix::paper_default();
        let hot = mix.component_core_power(VmtClass::Hot);
        let cold = mix.component_core_power(VmtClass::Cold);
        assert!((hot.get() - 6.3198).abs() < 0.001, "hot {hot}");
        assert!((cold.get() - 1.3719).abs() < 0.001, "cold {cold}");
        assert!(hot > cold);
    }

    #[test]
    fn rejects_unnormalized() {
        let err = WorkloadMix::new([
            (WorkloadKind::WebSearch, 0.5),
            (WorkloadKind::DataCaching, 0.5),
            (WorkloadKind::VideoEncoding, 0.5),
            (WorkloadKind::VirusScan, 0.0),
            (WorkloadKind::Clustering, 0.0),
        ])
        .unwrap_err();
        assert!(matches!(err, MixError::SharesNotNormalized { .. }));
    }

    #[test]
    fn rejects_negative_share() {
        let err = WorkloadMix::new([
            (WorkloadKind::WebSearch, -0.1),
            (WorkloadKind::DataCaching, 0.5),
            (WorkloadKind::VideoEncoding, 0.6),
            (WorkloadKind::VirusScan, 0.0),
            (WorkloadKind::Clustering, 0.0),
        ])
        .unwrap_err();
        assert!(matches!(err, MixError::InvalidShare { .. }));
    }

    #[test]
    fn pair_mix() {
        let mix = WorkloadMix::pair(WorkloadKind::DataCaching, WorkloadKind::WebSearch, 0.7);
        assert!((mix.share(WorkloadKind::DataCaching) - 0.7).abs() < 1e-12);
        assert!((mix.share(WorkloadKind::WebSearch) - 0.3).abs() < 1e-12);
        assert_eq!(mix.share(WorkloadKind::Clustering), 0.0);
    }

    #[test]
    #[should_panic(expected = "distinct workloads")]
    fn pair_rejects_same_kind() {
        WorkloadMix::pair(WorkloadKind::WebSearch, WorkloadKind::WebSearch, 0.5);
    }

    #[test]
    fn component_power_of_empty_component_is_zero() {
        let mix = WorkloadMix::pair(WorkloadKind::WebSearch, WorkloadKind::Clustering, 0.5);
        assert_eq!(
            mix.component_core_power(VmtClass::Cold),
            vmt_units::Watts::ZERO
        );
    }

    proptest! {
        /// Pairwise mixes interpolate the mean core power linearly.
        #[test]
        fn pair_power_interpolates(r in 0.0f64..=1.0) {
            let mix = WorkloadMix::pair(WorkloadKind::VirusScan, WorkloadKind::Clustering, r);
            let expect = r * WorkloadKind::VirusScan.core_power().get()
                + (1.0 - r) * WorkloadKind::Clustering.core_power().get();
            prop_assert!((mix.mean_core_power().get() - expect).abs() < 1e-9);
        }
    }
}
