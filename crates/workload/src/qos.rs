//! Colocation QoS model (the paper's Figure 6).
//!
//! Figure 6 answers a prerequisite question for VMT: can the two
//! latency-critical workloads (Web Search, Data Caching) share a server at
//! all? The paper measured CloudSuite on a 6-core Xeon E5-2420; we do not
//! have that testbed, so this module provides a synthetic
//! queueing-plus-contention model calibrated to reproduce the figure's
//! qualitative conclusions (see `DESIGN.md` §4):
//!
//! * **Data Caching**: at low load homogeneous (6 cores of caching) is
//!   best; in the mid range a mix with Web Search is similar or better
//!   (memory resources split between a memory-bound and a compute-bound
//!   tenant); at saturation homogeneous is again slightly better.
//! * **Web Search**: colocation with caching degrades latency across the
//!   whole load range (LLC interference) — the effect BubbleUp/Protean
//!   Code style contention mitigation is cited to manage.
//!
//! The model is an M/M/1-style queueing term per core plus two
//! interference terms: self-interference (neighbors of the same workload
//! thrashing the shared LLC) and cross-interference (the colocated
//! workload's footprint).

use vmt_units::Seconds;

/// A mean/90th-percentile latency pair.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Latency {
    /// Mean latency.
    pub mean: Seconds,
    /// 90th-percentile latency.
    pub p90: Seconds,
}

/// Core allocation on the 6-core test box of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Colocation {
    /// Cores running Data Caching.
    pub caching_cores: u32,
    /// Cores running Web Search.
    pub search_cores: u32,
}

impl Colocation {
    /// Homogeneous caching: all six cores run Data Caching.
    pub const CACHING_6C: Self = Self {
        caching_cores: 6,
        search_cores: 0,
    };
    /// Two caching cores alongside four search cores.
    pub const CACHING_2C_SEARCH: Self = Self {
        caching_cores: 2,
        search_cores: 4,
    };
    /// Four caching cores alongside two search cores.
    pub const CACHING_4C_SEARCH: Self = Self {
        caching_cores: 4,
        search_cores: 2,
    };
    /// Homogeneous search: all six cores run Web Search.
    pub const SEARCH_6C: Self = Self {
        caching_cores: 0,
        search_cores: 6,
    };
    /// Two search cores alongside four caching cores.
    pub const SEARCH_2C_CACHING: Self = Self {
        caching_cores: 4,
        search_cores: 2,
    };
    /// Four search cores alongside two caching cores.
    pub const SEARCH_4C_CACHING: Self = Self {
        caching_cores: 2,
        search_cores: 4,
    };
}

/// Caching per-core saturation capacity (requests/s).
const CACHING_CAPACITY_RPS: f64 = 65_000.0;
/// Search per-core saturation (clients).
const SEARCH_CAPACITY_CLIENTS: f64 = 60.0;

/// Data Caching latency at `rps_per_core` under a core allocation.
///
/// # Panics
///
/// Panics if `rps_per_core` is negative or the allocation has no caching
/// cores.
pub fn caching_latency(rps_per_core: f64, alloc: Colocation) -> Latency {
    assert!(rps_per_core >= 0.0, "rps must be non-negative");
    assert!(alloc.caching_cores > 0, "allocation has no caching cores");
    let u = (rps_per_core / CACHING_CAPACITY_RPS).min(0.985);
    // Per-core queueing delay (ms).
    let queueing = 1.2 * u / (1.0 - u);
    // Same-workload LLC thrashing grows with caching neighbors.
    let self_interference = 2.2 * f64::from(alloc.caching_cores.saturating_sub(1)) / 5.0 * u * u;
    // Colocated search: a constant footprint plus a sharp saturation term.
    let cross = f64::from(alloc.search_cores) / 4.0 * (0.55 + 7.0 * u.powi(10));
    let mean_ms = 0.5 + queueing + self_interference + cross;
    let p90_ms = mean_ms * 1.4 + cross * 0.8;
    Latency {
        mean: Seconds::new(mean_ms / 1e3),
        p90: Seconds::new(p90_ms / 1e3),
    }
}

/// Web Search latency at `clients_per_core` under a core allocation.
///
/// # Panics
///
/// Panics if `clients_per_core` is negative or the allocation has no
/// search cores.
pub fn search_latency(clients_per_core: f64, alloc: Colocation) -> Latency {
    assert!(clients_per_core >= 0.0, "clients must be non-negative");
    assert!(alloc.search_cores > 0, "allocation has no search cores");
    let u = (clients_per_core / SEARCH_CAPACITY_CLIENTS).min(0.985);
    let queueing = 0.0025 * clients_per_core / (1.0 - u);
    // Search neighbors contend mildly for LLC.
    let self_interference = 0.01 * f64::from(alloc.search_cores.saturating_sub(1)) / 5.0 * u;
    // Colocated caching degrades search across the whole range.
    let cross = f64::from(alloc.caching_cores) / 4.0 * (0.02 + 0.0015 * clients_per_core);
    let mean_s = 0.05 + queueing + self_interference + cross;
    let p90_s = mean_s * 1.35 + cross * 0.5;
    Latency {
        mean: Seconds::new(mean_s),
        p90: Seconds::new(p90_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_low_load_homogeneous_wins() {
        // "At very low loads … 6 cores running together provides the best
        // latency."
        let rps = 25_000.0;
        let six = caching_latency(rps, Colocation::CACHING_6C);
        let mixed2 = caching_latency(rps, Colocation::CACHING_2C_SEARCH);
        let mixed4 = caching_latency(rps, Colocation::CACHING_4C_SEARCH);
        assert!(six.mean < mixed2.mean);
        assert!(six.mean < mixed4.mean);
    }

    #[test]
    fn caching_mid_range_mix_is_similar_or_better() {
        // "In the middle range … a mixture provides similar or better
        // performance than homogeneous workloads."
        let rps = 45_000.0;
        let six = caching_latency(rps, Colocation::CACHING_6C);
        let mixed = caching_latency(rps, Colocation::CACHING_2C_SEARCH);
        assert!(
            mixed.mean.get() <= six.mean.get() * 1.02,
            "mixed {} vs six {}",
            mixed.mean.get(),
            six.mean.get()
        );
    }

    #[test]
    fn caching_saturation_homogeneous_slightly_better() {
        let rps = 59_000.0;
        let six = caching_latency(rps, Colocation::CACHING_6C);
        let mixed = caching_latency(rps, Colocation::CACHING_2C_SEARCH);
        assert!(six.mean < mixed.mean);
    }

    #[test]
    fn caching_latency_is_monotone_in_load() {
        let mut last = 0.0;
        for rps in (25..=60).map(|k| k as f64 * 1000.0) {
            let l = caching_latency(rps, Colocation::CACHING_6C).mean.get();
            assert!(l >= last);
            last = l;
        }
    }

    #[test]
    fn caching_range_matches_figure_scale() {
        // Figure 6's caching panel spans ~1–16 ms.
        let lo = caching_latency(25_000.0, Colocation::CACHING_6C);
        let hi = caching_latency(60_000.0, Colocation::CACHING_6C);
        assert!(lo.mean.get() * 1e3 < 3.0);
        assert!(hi.mean.get() * 1e3 > 10.0 && hi.mean.get() * 1e3 < 25.0);
    }

    #[test]
    fn search_colocation_hurts_everywhere() {
        // "We observe decreased performance across the whole range of
        // clients per core."
        for clients in [10.0, 20.0, 30.0, 40.0, 50.0] {
            let six = search_latency(clients, Colocation::SEARCH_6C);
            let mixed2 = search_latency(clients, Colocation::SEARCH_2C_CACHING);
            let mixed4 = search_latency(clients, Colocation::SEARCH_4C_CACHING);
            assert!(six.mean < mixed2.mean, "clients {clients}");
            assert!(six.mean < mixed4.mean, "clients {clients}");
        }
    }

    #[test]
    fn search_range_matches_figure_scale() {
        // Figure 6's search panel spans ~0.05–0.4 s.
        let lo = search_latency(10.0, Colocation::SEARCH_6C);
        let hi = search_latency(50.0, Colocation::SEARCH_6C);
        assert!(lo.mean.get() < 0.15);
        assert!(hi.mean.get() > 0.2 && hi.mean.get() < 0.9);
    }

    #[test]
    fn p90_exceeds_mean() {
        let l = caching_latency(45_000.0, Colocation::CACHING_2C_SEARCH);
        assert!(l.p90 > l.mean);
        let s = search_latency(37.5, Colocation::SEARCH_2C_CACHING);
        assert!(s.p90 > s.mean);
    }

    #[test]
    #[should_panic(expected = "no caching cores")]
    fn caching_requires_caching_cores() {
        caching_latency(1000.0, Colocation::SEARCH_6C);
    }
}
