//! Recorded load traces: replaying measured per-workload utilization.
//!
//! The synthetic [`DiurnalTrace`](crate::DiurnalTrace) stands in for the
//! paper's Google trace; a deployment that *has* a measured trace should
//! replay it instead. [`RecordedTrace`] holds per-workload utilization
//! samples at a fixed interval, linearly interpolated between samples,
//! and round-trips through a simple CSV format
//! (`hour,webtsearch,datacaching,videoencoding,virusscan,clustering` —
//! fractions of total cluster cores).

use crate::{LoadTrace, WorkloadKind};
use core::fmt;
use vmt_units::{Fraction, Hours, Minutes};

/// Error produced when parsing a recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// A measured per-workload utilization trace sampled at a fixed step.
///
/// # Examples
///
/// ```
/// use vmt_workload::{LoadTrace, RecordedTrace, WorkloadKind};
/// use vmt_units::{Hours, Minutes};
///
/// let trace = RecordedTrace::from_samples(
///     Minutes::new(30.0),
///     vec![[0.1, 0.1, 0.05, 0.02, 0.08], [0.2, 0.2, 0.1, 0.04, 0.16]],
/// )
/// .unwrap();
/// // Interpolated halfway between the two samples.
/// let u = trace.utilization(WorkloadKind::WebSearch, Hours::new(0.25));
/// assert!((u.get() - 0.15).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecordedTrace {
    step: Minutes,
    /// `rows[i][k]` = utilization of workload `k` at sample `i`.
    rows: Vec<[f64; 5]>,
}

impl RecordedTrace {
    /// Creates a trace from samples at a fixed `step`.
    ///
    /// # Errors
    ///
    /// Returns a message if fewer than two samples are given, the step is
    /// not positive, or any utilization is outside `[0, 1]` (including a
    /// row sum above 1).
    pub fn from_samples(step: Minutes, rows: Vec<[f64; 5]>) -> Result<Self, String> {
        if !(step.get() > 0.0 && step.get().is_finite()) {
            return Err(format!("step must be positive, got {step}"));
        }
        if rows.len() < 2 {
            return Err("a trace needs at least two samples".to_owned());
        }
        for (i, row) in rows.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            if row.iter().any(|u| !(0.0..=1.0).contains(u)) || sum > 1.0 + 1e-9 {
                return Err(format!(
                    "sample {i} is not a valid utilization row: {row:?}"
                ));
            }
        }
        Ok(Self { step, rows })
    }

    /// Parses the CSV format written by [`RecordedTrace::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] pointing at the first malformed line.
    pub fn from_csv_str(csv: &str) -> Result<Self, ParseTraceError> {
        let mut rows = Vec::new();
        let mut hours = Vec::new();
        for (idx, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("hour") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 6 {
                return Err(ParseTraceError {
                    line: idx + 1,
                    reason: format!("expected 6 comma-separated fields, got {}", fields.len()),
                });
            }
            let parse = |s: &str| -> Result<f64, ParseTraceError> {
                s.parse().map_err(|_| ParseTraceError {
                    line: idx + 1,
                    reason: format!("not a number: {s:?}"),
                })
            };
            hours.push(parse(fields[0])?);
            let mut row = [0.0; 5];
            for (k, field) in fields[1..].iter().enumerate() {
                row[k] = parse(field)?;
            }
            rows.push(row);
        }
        if hours.len() < 2 {
            return Err(ParseTraceError {
                line: 0,
                reason: "a trace needs at least two samples".to_owned(),
            });
        }
        let step_h = hours[1] - hours[0];
        for (i, pair) in hours.windows(2).enumerate() {
            // Tolerate the rounding of serialized hour stamps (≤3.6 s).
            if (pair[1] - pair[0] - step_h).abs() > 1e-3 {
                return Err(ParseTraceError {
                    line: i + 2,
                    reason: "samples must be evenly spaced".to_owned(),
                });
            }
        }
        Self::from_samples(Minutes::new(step_h * 60.0), rows)
            .map_err(|reason| ParseTraceError { line: 0, reason })
    }

    /// Serializes to the CSV format accepted by
    /// [`RecordedTrace::from_csv_str`].
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("hour,websearch,datacaching,videoencoding,virusscan,clustering\n");
        for (i, row) in self.rows.iter().enumerate() {
            let hour = i as f64 * self.step.get() / 60.0;
            out.push_str(&format!(
                "{:.4},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                hour, row[0], row[1], row[2], row[3], row[4]
            ));
        }
        out
    }

    /// Samples another trace into a recorded one (e.g. to snapshot the
    /// synthetic generator for external tooling).
    pub fn sample_from(trace: &dyn LoadTrace, step: Minutes) -> Self {
        let samples = (trace.horizon().to_minutes().get() / step.get()).ceil() as usize + 1;
        let rows = (0..samples)
            .map(|i| {
                let t = Hours::new(i as f64 * step.get() / 60.0);
                let mut row = [0.0; 5];
                for kind in WorkloadKind::ALL {
                    row[kind.index()] = trace.utilization(kind, t).get();
                }
                row
            })
            .collect();
        Self::from_samples(step, rows).expect("sampled rows are valid")
    }

    /// Sampling interval.
    pub fn step(&self) -> Minutes {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the trace holds no samples (unreachable for validated
    /// traces, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl LoadTrace for RecordedTrace {
    fn utilization(&self, kind: WorkloadKind, t: Hours) -> Fraction {
        let pos = (t.get() * 60.0 / self.step.get()).max(0.0);
        let i = (pos.floor() as usize).min(self.rows.len() - 1);
        let j = (i + 1).min(self.rows.len() - 1);
        let frac = pos - pos.floor();
        let k = kind.index();
        let u = self.rows[i][k] * (1.0 - frac) + self.rows[j][k] * frac;
        Fraction::saturating(u)
    }

    fn horizon(&self) -> Hours {
        Hours::new((self.rows.len() - 1) as f64 * self.step.get() / 60.0)
    }

    fn descriptor(&self) -> Option<crate::TraceDescriptor> {
        Some(crate::TraceDescriptor::Recorded(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiurnalTrace, TraceConfig};

    fn two_row() -> RecordedTrace {
        RecordedTrace::from_samples(
            Minutes::new(60.0),
            vec![[0.1, 0.2, 0.0, 0.0, 0.0], [0.3, 0.4, 0.0, 0.0, 0.0]],
        )
        .unwrap()
    }

    #[test]
    fn interpolates_linearly() {
        let t = two_row();
        let u = t.utilization(WorkloadKind::WebSearch, Hours::new(0.5));
        assert!((u.get() - 0.2).abs() < 1e-12);
        // Clamps past the end.
        let u = t.utilization(WorkloadKind::DataCaching, Hours::new(5.0));
        assert!((u.get() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip() {
        let t = two_row();
        let parsed = RecordedTrace::from_csv_str(&t.to_csv()).unwrap();
        assert_eq!(parsed.len(), t.len());
        for h in [0.0, 0.25, 0.5, 1.0] {
            for kind in WorkloadKind::ALL {
                let a = t.utilization(kind, Hours::new(h)).get();
                let b = parsed.utilization(kind, Hours::new(h)).get();
                assert!((a - b).abs() < 1e-5, "{kind} at {h}");
            }
        }
    }

    #[test]
    fn snapshot_of_the_synthetic_trace_replays_faithfully() {
        let synthetic = DiurnalTrace::new(TraceConfig::paper_default());
        let recorded = RecordedTrace::sample_from(&synthetic, Minutes::new(5.0));
        assert_eq!(recorded.horizon(), synthetic.horizon());
        for h in [0.0, 7.9, 16.3, 20.0, 33.4, 47.0] {
            let a = synthetic.total_utilization(Hours::new(h)).get();
            let b: f64 = WorkloadKind::ALL
                .iter()
                .map(|&k| recorded.utilization(k, Hours::new(h)).get())
                .sum();
            assert!((a - b).abs() < 0.01, "hour {h}: {a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(RecordedTrace::from_samples(Minutes::new(0.0), vec![[0.0; 5]; 2]).is_err());
        assert!(RecordedTrace::from_samples(Minutes::new(1.0), vec![[0.0; 5]]).is_err());
        assert!(
            RecordedTrace::from_samples(Minutes::new(1.0), vec![[0.5; 5], [0.0; 5]]).is_err(),
            "row summing to 2.5 must be rejected"
        );
        let err = RecordedTrace::from_csv_str("hour,a,b,c,d,e\n0.0,1,2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err =
            RecordedTrace::from_csv_str("0.0,0.1,0.1,0.1,0.1,x\n0.5,0,0,0,0,0\n").unwrap_err();
        assert!(err.reason.contains("not a number"));
    }

    #[test]
    fn uneven_spacing_rejected() {
        let csv = "0.0,0,0,0,0,0\n1.0,0,0,0,0,0\n3.0,0,0,0,0,0\n";
        let err = RecordedTrace::from_csv_str(csv).unwrap_err();
        assert!(err.reason.contains("evenly spaced"));
    }
}
