//! Deriving hot/cold classes from the thermal model.

use crate::{VmtClass, WorkloadKind};
use vmt_units::{Celsius, Watts, WattsPerKelvin};

/// Classifies workloads as hot or cold the way the paper does: a workload
/// is *hot* if "a server filled with only \[that\] workload can melt
/// significant wax over a peak load cycle".
///
/// Operationally: fill every core with the workload, compute the
/// steady-state air temperature at the wax, and compare against the wax
/// melting temperature (plus a small margin — "significant" wax requires
/// actually holding the plateau, not grazing it).
///
/// # Examples
///
/// ```
/// use vmt_workload::{ThermalClassifier, VmtClass, WorkloadKind};
///
/// let classifier = ThermalClassifier::paper_default();
/// // Reproduces Table I for all five workloads.
/// for kind in WorkloadKind::ALL {
///     assert_eq!(classifier.classify(kind), kind.vmt_class());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThermalClassifier {
    inlet: Celsius,
    capacity_rate: WattsPerKelvin,
    idle_power: Watts,
    cores: u32,
    melt_temperature: Celsius,
    margin: vmt_units::DegC,
}

impl ThermalClassifier {
    /// Creates a classifier from the cluster's thermal constants.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_rate` is not strictly positive or `cores` is
    /// zero.
    pub fn new(
        inlet: Celsius,
        capacity_rate: WattsPerKelvin,
        idle_power: Watts,
        cores: u32,
        melt_temperature: Celsius,
    ) -> Self {
        assert!(capacity_rate.get() > 0.0, "capacity rate must be positive");
        assert!(cores > 0, "cores must be non-zero");
        Self {
            inlet,
            capacity_rate,
            idle_power,
            cores,
            melt_temperature,
            margin: vmt_units::DegC::new(0.0),
        }
    }

    /// The paper's cluster constants: 22 °C inlet, 17.5 W/K air stream,
    /// 100 W idle, 32 cores, 35.7 °C wax.
    pub fn paper_default() -> Self {
        Self::new(
            Celsius::new(22.0),
            WattsPerKelvin::new(17.5),
            Watts::new(100.0),
            32,
            Celsius::new(35.7),
        )
    }

    /// Adds a margin above the melt point that the filled server must
    /// reach to count as hot.
    #[must_use]
    pub fn with_margin(mut self, margin: vmt_units::DegC) -> Self {
        self.margin = margin;
        self
    }

    /// Steady-state air-at-wax temperature of a server filled with only
    /// `kind` on every core.
    pub fn filled_server_temperature(&self, kind: WorkloadKind) -> Celsius {
        let power = self.idle_power + kind.core_power() * f64::from(self.cores);
        self.inlet + vmt_units::DegC::new(power.get() / self.capacity_rate.get())
    }

    /// Per-core power above which a workload classifies as hot under this
    /// configuration (the decision boundary).
    pub fn hot_core_power_threshold(&self) -> Watts {
        let needed_rise = (self.melt_temperature + self.margin) - self.inlet;
        let needed_power = Watts::new(needed_rise.get() * self.capacity_rate.get());
        (needed_power - self.idle_power) / f64::from(self.cores)
    }

    /// Classifies one workload.
    pub fn classify(&self, kind: WorkloadKind) -> VmtClass {
        if self.filled_server_temperature(kind) >= self.melt_temperature + self.margin {
            VmtClass::Hot
        } else {
            VmtClass::Cold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_one() {
        let c = ThermalClassifier::paper_default();
        for kind in WorkloadKind::ALL {
            assert_eq!(c.classify(kind), kind.vmt_class(), "{kind}");
        }
    }

    #[test]
    fn threshold_separates_the_catalog() {
        let c = ThermalClassifier::paper_default();
        let threshold = c.hot_core_power_threshold();
        // The decision boundary falls between caching (1.69 W/core) and
        // search (4.65 W/core).
        assert!(threshold > WorkloadKind::DataCaching.core_power());
        assert!(threshold < WorkloadKind::WebSearch.core_power());
    }

    #[test]
    fn hotter_inlet_reclassifies_borderline_workloads() {
        // At a 26 °C inlet even caching-class power profiles approach the
        // melt point; search is hot with margin to spare.
        let warm = ThermalClassifier::new(
            Celsius::new(30.0),
            WattsPerKelvin::new(17.5),
            Watts::new(100.0),
            32,
            Celsius::new(35.7),
        );
        assert_eq!(warm.classify(WorkloadKind::DataCaching), VmtClass::Hot);
    }

    #[test]
    fn margin_raises_the_bar() {
        let strict = ThermalClassifier::paper_default().with_margin(vmt_units::DegC::new(10.0));
        // With a 10 K margin nothing in the catalog qualifies.
        for kind in WorkloadKind::ALL {
            assert_eq!(strict.classify(kind), VmtClass::Cold, "{kind}");
        }
    }

    #[test]
    fn filled_server_temperatures_are_ordered_by_power() {
        let c = ThermalClassifier::paper_default();
        assert!(
            c.filled_server_temperature(WorkloadKind::VideoEncoding)
                > c.filled_server_temperature(WorkloadKind::WebSearch)
        );
        assert!(
            c.filled_server_temperature(WorkloadKind::WebSearch)
                > c.filled_server_temperature(WorkloadKind::VirusScan)
        );
    }
}
