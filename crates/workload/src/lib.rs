//! Datacenter workload catalog, diurnal trace generation, and colocation
//! QoS models.
//!
//! The VMT paper evaluates a Google-style suite of five user-facing
//! workloads (its Table I) driven by a two-day production load trace. This
//! crate is that substrate:
//!
//! * [`WorkloadKind`] — the five workloads with their measured per-CPU
//!   power draws and VMT hot/cold classes.
//! * [`ThermalClassifier`] — how those classes are *derived*: a workload is
//!   "hot" when a server filled with only that workload would melt wax at
//!   peak.
//! * [`WorkloadMix`] — how cluster load is split across the workloads
//!   (the paper's ≈60/40 hot/cold split).
//! * [`DiurnalTrace`] — a parametric two-day diurnal load curve standing in
//!   for the paper's Google trace (see `DESIGN.md` §4 for the
//!   substitution rationale): double peak (hours ≈20 and ≈44), deep
//!   overnight troughs, 95% peak utilization, deterministic seeded noise.
//! * [`LoadTrace`] / [`RecordedTrace`] — the trace-source abstraction and
//!   a CSV-backed replayed trace for deployments with measured data.
//! * [`ArrivalPlanner`] / [`Job`] — converts a target per-workload core
//!   occupancy into concrete job arrivals with jittered durations.
//! * [`qos`] — the colocation latency model behind the paper's Figure 6
//!   (can search and caching share a box at all?).
//!
//! # Examples
//!
//! ```
//! use vmt_workload::{DiurnalTrace, TraceConfig, WorkloadKind, WorkloadMix};
//! use vmt_units::Hours;
//!
//! let trace = DiurnalTrace::new(TraceConfig::paper_default());
//! let peak = trace.total_utilization(Hours::new(20.0));
//! let trough = trace.total_utilization(Hours::new(5.0));
//! assert!(peak.get() > 0.85);
//! assert!(trough.get() < 0.45);
//!
//! // The default mix is ≈60% hot jobs by core-load.
//! let mix = WorkloadMix::paper_default();
//! assert!((mix.hot_fraction() - 0.6).abs() < 1e-9);
//! ```

mod arrivals;
mod catalog;
mod classify;
mod job;
mod mix;
pub mod qos;
mod recorded;
mod source;
mod trace;

pub use arrivals::{ArrivalPlanner, DurationModel, JobSpec};
pub use catalog::{QosClass, VmtClass, WorkloadKind};
pub use classify::ThermalClassifier;
pub use job::{Job, JobId};
pub use mix::{MixError, WorkloadMix};
pub use recorded::{ParseTraceError, RecordedTrace};
pub use source::{LoadTrace, TraceDescriptor};
pub use trace::{DiurnalTrace, SecondPeak, TraceConfig};
