//! Turning a load target into concrete job arrivals.

use crate::WorkloadKind;
use rand::{Rng, SeedableRng};
use vmt_units::Seconds;

/// How job durations scatter around each workload's typical duration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DurationModel {
    /// Uniform ±fraction jitter around the typical duration — tight,
    /// lease-like lifetimes.
    UniformJitter {
        /// Jitter fraction (e.g. 0.25 = ±25%).
        fraction: f64,
    },
    /// Exponentially distributed durations with the typical duration as
    /// the mean, clamped to `[0.1, 6]×` typical — the classic
    /// service-time model, with a heavier tail.
    Exponential,
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel::UniformJitter { fraction: 0.25 }
    }
}

/// A planned job arrival: which workload and for how long.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// The workload the job belongs to.
    pub kind: WorkloadKind,
    /// How long the job will occupy its core.
    pub duration: Seconds,
}

/// Plans job arrivals so that per-workload core occupancy tracks the
/// trace.
///
/// Each scheduling tick the simulator asks: the trace wants `target`
/// cores of workload W busy, `current` are busy — the planner emits
/// `max(0, target − current)` new jobs with jittered durations. Durations
/// are short (minutes) relative to the diurnal cycle (hours), so occupancy
/// tracks the rising edge tightly and lags the falling edge by at most one
/// job duration, mirroring how request-driven services drain.
///
/// All jitter comes from a seeded RNG owned by the planner, so a
/// simulation is reproducible end to end.
///
/// # Examples
///
/// ```
/// use vmt_workload::{ArrivalPlanner, WorkloadKind};
///
/// let mut planner = ArrivalPlanner::new(7);
/// let jobs = planner.plan(WorkloadKind::WebSearch, 10, 4);
/// assert_eq!(jobs.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalPlanner {
    rng: rand::rngs::SmallRng,
    model: DurationModel,
}

impl ArrivalPlanner {
    /// Creates a planner with the default duration model (±25% uniform
    /// jitter).
    pub fn new(seed: u64) -> Self {
        Self::with_model(seed, DurationModel::default())
    }

    /// Creates a planner with a custom uniform jitter fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ jitter < 1`.
    pub fn with_jitter(seed: u64, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        Self::with_model(seed, DurationModel::UniformJitter { fraction: jitter })
    }

    /// Creates a planner with an explicit duration model.
    pub fn with_model(seed: u64, model: DurationModel) -> Self {
        if let DurationModel::UniformJitter { fraction } = model {
            assert!((0.0..1.0).contains(&fraction), "jitter must be in [0, 1)");
        }
        Self {
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
            model,
        }
    }

    /// Raw RNG state, for checkpointing the jitter stream position.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Overwrites the RNG state with a previously captured
    /// [`rng_state`](ArrivalPlanner::rng_state), resuming the jitter
    /// stream exactly where the checkpoint left it.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rand::rngs::SmallRng::from_state(state);
    }

    /// Draws one duration for `kind` from the configured model.
    fn draw_duration(&mut self, kind: WorkloadKind) -> Seconds {
        let typical = kind.typical_duration_minutes() * 60.0;
        let factor = match self.model {
            DurationModel::UniformJitter { fraction } => {
                1.0 + self.rng.gen_range(-fraction..=fraction)
            }
            DurationModel::Exponential => {
                // Inverse-CDF sampling, clamped against degenerate tails.
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                (-u.ln()).clamp(0.1, 6.0)
            }
        };
        Seconds::new(typical * factor)
    }

    /// Plans the arrivals needed to bring `current` occupied cores of
    /// `kind` up to `target`. Returns an empty vector when already at or
    /// above target.
    pub fn plan(&mut self, kind: WorkloadKind, target: usize, current: usize) -> Vec<JobSpec> {
        let mut out = Vec::new();
        self.plan_into(kind, target, current, &mut out);
        out
    }

    /// Allocation-free variant of [`ArrivalPlanner::plan`]: appends the
    /// planned arrivals to `out` (which the caller typically recycles
    /// across ticks). Draws from the RNG exactly as `plan` does, so the
    /// two are interchangeable without perturbing the jitter stream.
    pub fn plan_into(
        &mut self,
        kind: WorkloadKind,
        target: usize,
        current: usize,
        out: &mut Vec<JobSpec>,
    ) {
        let deficit = target.saturating_sub(current);
        out.reserve(deficit);
        for _ in 0..deficit {
            out.push(JobSpec {
                kind,
                duration: self.draw_duration(kind),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_the_deficit_exactly() {
        let mut p = ArrivalPlanner::new(1);
        assert_eq!(p.plan(WorkloadKind::VirusScan, 12, 5).len(), 7);
        assert!(p.plan(WorkloadKind::VirusScan, 5, 5).is_empty());
        assert!(p.plan(WorkloadKind::VirusScan, 3, 5).is_empty());
    }

    #[test]
    fn durations_are_jittered_around_typical() {
        let mut p = ArrivalPlanner::new(2);
        let jobs = p.plan(WorkloadKind::WebSearch, 1000, 0);
        let typical = WorkloadKind::WebSearch.typical_duration_minutes() * 60.0;
        let mean: f64 = jobs.iter().map(|j| j.duration.get()).sum::<f64>() / jobs.len() as f64;
        assert!((mean - typical).abs() < typical * 0.05, "mean {mean}");
        for j in &jobs {
            let d = j.duration.get();
            assert!(d >= typical * 0.74 && d <= typical * 1.26, "duration {d}");
        }
    }

    #[test]
    fn reproducible_for_same_seed() {
        let mut a = ArrivalPlanner::new(3);
        let mut b = ArrivalPlanner::new(3);
        assert_eq!(
            a.plan(WorkloadKind::Clustering, 10, 0),
            b.plan(WorkloadKind::Clustering, 10, 0)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ArrivalPlanner::new(4);
        let mut b = ArrivalPlanner::new(5);
        assert_ne!(
            a.plan(WorkloadKind::Clustering, 10, 0),
            b.plan(WorkloadKind::Clustering, 10, 0)
        );
    }

    #[test]
    #[should_panic(expected = "jitter must be in")]
    fn invalid_jitter_rejected() {
        ArrivalPlanner::with_jitter(0, 1.0);
    }

    #[test]
    fn exponential_durations_have_the_right_mean_and_tail() {
        let mut p = ArrivalPlanner::with_model(9, DurationModel::Exponential);
        let jobs = p.plan(WorkloadKind::DataCaching, 5000, 0);
        let typical = WorkloadKind::DataCaching.typical_duration_minutes() * 60.0;
        let mean: f64 = jobs.iter().map(|j| j.duration.get()).sum::<f64>() / jobs.len() as f64;
        assert!((mean - typical).abs() < typical * 0.06, "mean {mean}");
        // A genuine tail: some jobs run more than twice the typical.
        let long = jobs
            .iter()
            .filter(|j| j.duration.get() > 2.0 * typical)
            .count();
        assert!(long > jobs.len() / 40, "tail too thin: {long}");
        // ... but the clamp holds.
        assert!(jobs
            .iter()
            .all(|j| j.duration.get() <= 6.0 * typical + 1e-9));
        assert!(jobs
            .iter()
            .all(|j| j.duration.get() >= 0.1 * typical - 1e-9));
    }
}
