//! The trace-source abstraction.

use crate::WorkloadKind;
use vmt_units::{Fraction, Hours};

/// A source of per-workload cluster utilization over time.
///
/// The simulator asks a trace two questions: how long is it, and what
/// fraction of the cluster's cores should workload `k` occupy at time
/// `t`. The synthetic [`DiurnalTrace`](crate::DiurnalTrace) and the
/// replayed [`RecordedTrace`](crate::RecordedTrace) both implement this;
/// downstream users can drive the simulator with their own sources
/// (live feeds, other generators) by implementing it too.
pub trait LoadTrace: core::fmt::Debug + Send {
    /// Utilization contributed by one workload at time `t` (fraction of
    /// total cluster cores occupied by that workload).
    fn utilization(&self, kind: WorkloadKind, t: Hours) -> Fraction;

    /// Trace length.
    fn horizon(&self) -> Hours;

    /// Target number of occupied cores for `kind` at `t` in a cluster
    /// with `total_cores` cores.
    fn target_cores(&self, kind: WorkloadKind, t: Hours, total_cores: usize) -> usize {
        (self.utilization(kind, t).get() * total_cores as f64).round() as usize
    }
}

impl LoadTrace for crate::DiurnalTrace {
    fn utilization(&self, kind: WorkloadKind, t: Hours) -> Fraction {
        crate::DiurnalTrace::utilization(self, kind, t)
    }

    fn horizon(&self) -> Hours {
        crate::DiurnalTrace::horizon(self)
    }
}

impl From<crate::DiurnalTrace> for Box<dyn LoadTrace> {
    fn from(trace: crate::DiurnalTrace) -> Self {
        Box::new(trace)
    }
}

impl From<crate::RecordedTrace> for Box<dyn LoadTrace> {
    fn from(trace: crate::RecordedTrace) -> Self {
        Box::new(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiurnalTrace, TraceConfig};

    #[test]
    fn trait_and_inherent_methods_agree() {
        let trace = DiurnalTrace::new(TraceConfig::paper_default());
        let boxed: Box<dyn LoadTrace> = trace.clone().into();
        for h in [0.0, 12.5, 20.0, 40.0] {
            let t = Hours::new(h);
            assert_eq!(boxed.horizon(), trace.horizon());
            for kind in WorkloadKind::ALL {
                assert_eq!(
                    boxed.utilization(kind, t),
                    DiurnalTrace::utilization(&trace, kind, t)
                );
                assert_eq!(
                    boxed.target_cores(kind, t, 3200),
                    trace.target_cores(kind, t, 3200)
                );
            }
        }
    }
}
