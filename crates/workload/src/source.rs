//! The trace-source abstraction.

use crate::WorkloadKind;
use vmt_units::{Fraction, Hours};

/// A source of per-workload cluster utilization over time.
///
/// The simulator asks a trace two questions: how long is it, and what
/// fraction of the cluster's cores should workload `k` occupy at time
/// `t`. The synthetic [`DiurnalTrace`](crate::DiurnalTrace) and the
/// replayed [`RecordedTrace`](crate::RecordedTrace) both implement this;
/// downstream users can drive the simulator with their own sources
/// (live feeds, other generators) by implementing it too.
pub trait LoadTrace: core::fmt::Debug + Send {
    /// Utilization contributed by one workload at time `t` (fraction of
    /// total cluster cores occupied by that workload).
    fn utilization(&self, kind: WorkloadKind, t: Hours) -> Fraction;

    /// Trace length.
    fn horizon(&self) -> Hours;

    /// Target number of occupied cores for `kind` at `t` in a cluster
    /// with `total_cores` cores.
    fn target_cores(&self, kind: WorkloadKind, t: Hours, total_cores: usize) -> usize {
        (self.utilization(kind, t).get() * total_cores as f64).round() as usize
    }

    /// A serializable description of this trace, when it has one.
    ///
    /// The built-in sources ([`DiurnalTrace`](crate::DiurnalTrace),
    /// [`RecordedTrace`](crate::RecordedTrace)) return a
    /// [`TraceDescriptor`] that [`TraceDescriptor::build`] turns back into
    /// an equivalent boxed trace, which is what makes a simulation
    /// checkpoint self-describing. Custom external sources default to
    /// `None` and cannot be checkpointed.
    fn descriptor(&self) -> Option<TraceDescriptor> {
        None
    }
}

/// A self-describing, serializable stand-in for a boxed [`LoadTrace`].
///
/// Both built-in trace types are plain data, so the descriptor embeds
/// them whole; [`TraceDescriptor::build`] reconstructs a trace that is
/// bit-identical to the one it was taken from.
// Variant sizes are lopsided (DiurnalTrace is plain config, RecordedTrace
// is a thin Vec handle), but descriptors are built once per checkpoint,
// never stored in bulk — boxing would only complicate matching.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TraceDescriptor {
    /// A synthetic diurnal trace.
    Diurnal(crate::DiurnalTrace),
    /// A replayed measured trace.
    Recorded(crate::RecordedTrace),
}

impl TraceDescriptor {
    /// Reconstructs the described trace.
    pub fn build(&self) -> Box<dyn LoadTrace> {
        match self {
            TraceDescriptor::Diurnal(trace) => Box::new(trace.clone()),
            TraceDescriptor::Recorded(trace) => Box::new(trace.clone()),
        }
    }
}

impl LoadTrace for crate::DiurnalTrace {
    fn utilization(&self, kind: WorkloadKind, t: Hours) -> Fraction {
        crate::DiurnalTrace::utilization(self, kind, t)
    }

    fn horizon(&self) -> Hours {
        crate::DiurnalTrace::horizon(self)
    }

    fn descriptor(&self) -> Option<TraceDescriptor> {
        Some(TraceDescriptor::Diurnal(self.clone()))
    }
}

impl From<crate::DiurnalTrace> for Box<dyn LoadTrace> {
    fn from(trace: crate::DiurnalTrace) -> Self {
        Box::new(trace)
    }
}

impl From<crate::RecordedTrace> for Box<dyn LoadTrace> {
    fn from(trace: crate::RecordedTrace) -> Self {
        Box::new(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiurnalTrace, TraceConfig};

    #[test]
    fn trait_and_inherent_methods_agree() {
        let trace = DiurnalTrace::new(TraceConfig::paper_default());
        let boxed: Box<dyn LoadTrace> = trace.clone().into();
        for h in [0.0, 12.5, 20.0, 40.0] {
            let t = Hours::new(h);
            assert_eq!(boxed.horizon(), trace.horizon());
            for kind in WorkloadKind::ALL {
                assert_eq!(
                    boxed.utilization(kind, t),
                    DiurnalTrace::utilization(&trace, kind, t)
                );
                assert_eq!(
                    boxed.target_cores(kind, t, 3200),
                    trace.target_cores(kind, t, 3200)
                );
            }
        }
    }
}
