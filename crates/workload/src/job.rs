//! Jobs: the unit of placement.

use crate::WorkloadKind;
use vmt_units::{Seconds, Watts};

/// Unique identifier of a job within one simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct JobId(pub u64);

impl core::fmt::Display for JobId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A schedulable unit of work occupying one core for a bounded duration.
///
/// The paper's jobs "are assigned separate physical cores and never share
/// SMT contexts", so one job = one core is the natural granularity; a
/// request stream that needs N cores appears as N concurrent jobs.
///
/// # Examples
///
/// ```
/// use vmt_workload::{Job, JobId, WorkloadKind};
/// use vmt_units::Seconds;
///
/// let job = Job::new(JobId(1), WorkloadKind::WebSearch, Seconds::new(300.0));
/// assert!(job.core_power().get() > 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Job {
    id: JobId,
    kind: WorkloadKind,
    duration: Seconds,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive and finite.
    pub fn new(id: JobId, kind: WorkloadKind, duration: Seconds) -> Self {
        assert!(
            duration.get() > 0.0 && duration.get().is_finite(),
            "job duration must be positive and finite, got {duration}"
        );
        Self { id, kind, duration }
    }

    /// Replaces the job's identifier (engines stamp ids in final
    /// arrival order after shuffling a pre-materialized batch).
    #[inline]
    pub fn set_id(&mut self, id: JobId) {
        self.id = id;
    }

    /// The job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The workload the job belongs to.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// How long the job occupies its core.
    pub fn duration(&self) -> Seconds {
        self.duration
    }

    /// The job's per-core power draw while running.
    pub fn core_power(&self) -> Watts {
        self.kind.core_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let job = Job::new(JobId(7), WorkloadKind::Clustering, Seconds::new(720.0));
        assert_eq!(job.id(), JobId(7));
        assert_eq!(job.kind(), WorkloadKind::Clustering);
        assert_eq!(job.duration(), Seconds::new(720.0));
        assert_eq!(job.core_power(), WorkloadKind::Clustering.core_power());
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        Job::new(JobId(0), WorkloadKind::VirusScan, Seconds::new(0.0));
    }

    #[test]
    fn display() {
        assert_eq!(JobId(42).to_string(), "job#42");
    }
}
