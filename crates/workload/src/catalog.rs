//! The five workloads of the paper's Table I.

use vmt_units::Watts;

/// VMT thermal class of a workload: can a server filled with only this
/// workload melt significant wax over a peak load cycle?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum VmtClass {
    /// Hot: concentrate these jobs in the hot group to melt wax.
    Hot,
    /// Cold: schedule in the cold group.
    Cold,
}

impl core::fmt::Display for VmtClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            VmtClass::Hot => "hot",
            VmtClass::Cold => "cold",
        })
    }
}

/// Latency class of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum QosClass {
    /// Millisecond/microsecond deadlines (web search, data caching).
    LatencyCritical,
    /// User-facing but tolerant of seconds of delay (encoding, scanning,
    /// clustering) — *not* batch: cannot be deferred to off hours.
    Elastic,
}

/// One of the five datacenter workloads the paper evaluates (Table I).
///
/// Power values are per 8-core Xeon E7-4809 v4 CPU as the paper reports
/// them; [`WorkloadKind::core_power`] divides by 8 for the per-core linear
/// model.
///
/// # Examples
///
/// ```
/// use vmt_workload::{VmtClass, WorkloadKind};
///
/// assert_eq!(WorkloadKind::WebSearch.vmt_class(), VmtClass::Hot);
/// assert_eq!(WorkloadKind::DataCaching.vmt_class(), VmtClass::Cold);
/// assert!((WorkloadKind::VideoEncoding.cpu_power().get() - 60.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WorkloadKind {
    /// CloudSuite Web Search: latency-critical index serving.
    WebSearch,
    /// CloudSuite Data Caching (Memcached): latency-critical, low CPU
    /// power.
    DataCaching,
    /// SPEC 2006 h264 video encoding (e.g. YouTube re-encoding).
    VideoEncoding,
    /// Virus scanning of freshly uploaded files (e.g. Google Drive).
    VirusScan,
    /// Kernel-based clustering for ad targeting.
    Clustering,
}

/// Cores per CPU package in the paper's server (Xeon E7-4809 v4).
pub(crate) const CORES_PER_CPU: u32 = 8;

impl WorkloadKind {
    /// All five workloads, in the paper's Table I order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::WebSearch,
        WorkloadKind::DataCaching,
        WorkloadKind::VideoEncoding,
        WorkloadKind::VirusScan,
        WorkloadKind::Clustering,
    ];

    /// Measured CPU power (per 8-core package), from Table I.
    pub fn cpu_power(self) -> Watts {
        let w = match self {
            WorkloadKind::WebSearch => 37.2,
            WorkloadKind::DataCaching => 13.5,
            WorkloadKind::VideoEncoding => 60.9,
            WorkloadKind::VirusScan => 3.4,
            WorkloadKind::Clustering => 59.5,
        };
        Watts::new(w)
    }

    /// Per-core power under the linear model (CPU power / 8 cores).
    pub fn core_power(self) -> Watts {
        self.cpu_power() / f64::from(CORES_PER_CPU)
    }

    /// VMT class, as the paper assigns it in Table I.
    ///
    /// [`crate::ThermalClassifier`] re-derives these from the thermal
    /// model; this accessor is the published ground truth.
    pub fn vmt_class(self) -> VmtClass {
        match self {
            WorkloadKind::WebSearch | WorkloadKind::VideoEncoding | WorkloadKind::Clustering => {
                VmtClass::Hot
            }
            WorkloadKind::DataCaching | WorkloadKind::VirusScan => VmtClass::Cold,
        }
    }

    /// Latency class.
    pub fn qos_class(self) -> QosClass {
        match self {
            WorkloadKind::WebSearch | WorkloadKind::DataCaching => QosClass::LatencyCritical,
            _ => QosClass::Elastic,
        }
    }

    /// Table I display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::WebSearch => "WebSearch",
            WorkloadKind::DataCaching => "DataCaching",
            WorkloadKind::VideoEncoding => "VideoEncoding",
            WorkloadKind::VirusScan => "VirusScan",
            WorkloadKind::Clustering => "Clustering",
        }
    }

    /// Stable dense index (0..5) for per-workload arrays.
    pub fn index(self) -> usize {
        match self {
            WorkloadKind::WebSearch => 0,
            WorkloadKind::DataCaching => 1,
            WorkloadKind::VideoEncoding => 2,
            WorkloadKind::VirusScan => 3,
            WorkloadKind::Clustering => 4,
        }
    }

    /// Inverse of [`WorkloadKind::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 5`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Typical job duration in minutes, used by the arrival planner.
    ///
    /// Chosen to be short relative to the diurnal cycle so occupancy
    /// tracks the trace: queries/cache sessions are modeled as short
    /// leases; encodes and clustering runs are longer.
    pub fn typical_duration_minutes(self) -> f64 {
        match self {
            WorkloadKind::WebSearch => 5.0,
            WorkloadKind::DataCaching => 10.0,
            WorkloadKind::VideoEncoding => 8.0,
            WorkloadKind::VirusScan => 4.0,
            WorkloadKind::Clustering => 12.0,
        }
    }
}

impl core::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_power_values() {
        let expect = [
            (WorkloadKind::WebSearch, 37.2),
            (WorkloadKind::DataCaching, 13.5),
            (WorkloadKind::VideoEncoding, 60.9),
            (WorkloadKind::VirusScan, 3.4),
            (WorkloadKind::Clustering, 59.5),
        ];
        for (kind, w) in expect {
            assert!((kind.cpu_power().get() - w).abs() < 1e-12, "{kind}");
            assert!((kind.core_power().get() - w / 8.0).abs() < 1e-12, "{kind}");
        }
    }

    #[test]
    fn table_one_classes() {
        use VmtClass::*;
        let expect = [
            (WorkloadKind::WebSearch, Hot),
            (WorkloadKind::DataCaching, Cold),
            (WorkloadKind::VideoEncoding, Hot),
            (WorkloadKind::VirusScan, Cold),
            (WorkloadKind::Clustering, Hot),
        ];
        for (kind, class) in expect {
            assert_eq!(kind.vmt_class(), class, "{kind}");
        }
    }

    #[test]
    fn qos_classes() {
        assert_eq!(
            WorkloadKind::WebSearch.qos_class(),
            QosClass::LatencyCritical
        );
        assert_eq!(
            WorkloadKind::DataCaching.qos_class(),
            QosClass::LatencyCritical
        );
        assert_eq!(WorkloadKind::VideoEncoding.qos_class(), QosClass::Elastic);
    }

    #[test]
    fn index_round_trips() {
        for kind in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_index(kind.index()), kind);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadKind::WebSearch.to_string(), "WebSearch");
        assert_eq!(VmtClass::Hot.to_string(), "hot");
    }
}
