//! The two-day diurnal load trace.
//!
//! The paper drives its evaluation with a two-day Google production trace
//! (its reference \[46\]), normalized following Kontorinis et al. That
//! trace is not public, so this module generates a parametric equivalent
//! with the properties the evaluation actually depends on (see
//! `DESIGN.md` §4): a diurnal double-peak reaching 95% utilization
//! ("atypically high, worst case for the cooling system"), deep overnight
//! troughs, the ≈60/40 hot/cold workload split, and small short-period
//! fluctuations. All randomness is seeded and evaluated functionally
//! (deterministic sinusoidal noise), so any `(config, t)` pair always
//! yields the same load.

use crate::{WorkloadKind, WorkloadMix};
use vmt_units::{Fraction, Hours};

/// Configuration of the synthetic diurnal trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceConfig {
    /// Trace length.
    pub horizon: Hours,
    /// Utilization at the diurnal peak.
    pub peak_utilization: Fraction,
    /// Utilization at the overnight trough.
    pub trough_utilization: Fraction,
    /// Hour-of-day at which load peaks (the paper's peaks sit around
    /// hour 20 of each day).
    pub peak_hour: f64,
    /// Exponent sharpening the peak: 1 is a plain raised cosine; larger
    /// values narrow the top of the peak (production diurnal curves have
    /// narrower tops than a sine).
    pub peak_sharpness: f64,
    /// Width of the flat top of the peak, in hours. Production diurnal
    /// curves hold near their maximum for a few hours (users stay online
    /// through the evening); the cosine is rescaled so the envelope
    /// saturates at the peak level across this window.
    pub plateau_hours: f64,
    /// Per-day amplitude scaling, cycled over days (day-to-day load
    /// variation).
    pub day_scale: Vec<f64>,
    /// Relative amplitude of short-period load fluctuation per workload.
    pub noise_amplitude: f64,
    /// Seed for the (deterministic) fluctuation phases.
    pub seed: u64,
    /// How core-load is split across workloads.
    pub mix: WorkloadMix,
    /// Optional secondary intra-day load bump (e.g. a morning batch
    /// window before the evening peak) — the scenario in which
    /// *preserving* wax for the later, hotter peak matters.
    pub second_peak: Option<SecondPeak>,
}

/// A secondary intra-day load bump added to the envelope.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SecondPeak {
    /// Hour-of-day of the bump's center.
    pub hour: f64,
    /// Utilization at the bump's top (fraction of cluster cores).
    pub utilization: f64,
    /// Half-width of the bump in hours.
    pub width_hours: f64,
}

impl TraceConfig {
    /// The paper's evaluation trace: 48 h, 95% peak, 35% trough, peak at
    /// hour 20, day-two peak slightly lower.
    pub fn paper_default() -> Self {
        Self {
            horizon: Hours::new(48.0),
            peak_utilization: Fraction::saturating(0.95),
            trough_utilization: Fraction::saturating(0.35),
            peak_hour: 20.0,
            peak_sharpness: 4.5,
            plateau_hours: 3.0,
            day_scale: vec![1.0, 0.98],
            noise_amplitude: 0.015,
            seed: 0x5CA1_AB1E,
            mix: WorkloadMix::paper_default(),
            second_peak: None,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A generated two-day diurnal trace.
///
/// # Examples
///
/// ```
/// use vmt_workload::{DiurnalTrace, TraceConfig, WorkloadKind};
/// use vmt_units::Hours;
///
/// let trace = DiurnalTrace::new(TraceConfig::paper_default());
/// let u = trace.utilization(WorkloadKind::WebSearch, Hours::new(20.0));
/// // WebSearch holds 25% of a ~95% peak.
/// assert!((u.get() - 0.95 * 0.25).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiurnalTrace {
    config: TraceConfig,
    /// Per-workload fluctuation phases (radians), derived from the seed.
    phases: [f64; 5],
    /// Per-workload fluctuation periods (hours), derived from the seed.
    periods: [f64; 5],
}

impl DiurnalTrace {
    /// Builds the trace from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (empty `day_scale`,
    /// trough above peak, or non-positive sharpness/horizon).
    pub fn new(config: TraceConfig) -> Self {
        assert!(!config.day_scale.is_empty(), "day_scale must not be empty");
        assert!(
            config.trough_utilization <= config.peak_utilization,
            "trough must not exceed peak"
        );
        assert!(config.peak_sharpness > 0.0, "sharpness must be positive");
        assert!(
            (0.0..24.0).contains(&config.plateau_hours),
            "plateau must be in [0, 24) hours"
        );
        assert!(config.horizon.get() > 0.0, "horizon must be positive");
        // Cheap seeded hash → per-workload phases/periods. splitmix64.
        let mut state = config.seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut phases = [0.0; 5];
        let mut periods = [0.0; 5];
        for i in 0..5 {
            phases[i] = (next() % 10_000) as f64 / 10_000.0 * std::f64::consts::TAU;
            // Fluctuation periods between 1.5 and 3.5 hours.
            periods[i] = 1.5 + (next() % 10_000) as f64 / 10_000.0 * 2.0;
        }
        Self {
            config,
            phases,
            periods,
        }
    }

    /// The trace configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Trace length.
    pub fn horizon(&self) -> Hours {
        self.config.horizon
    }

    /// The smooth diurnal envelope (before noise), as a fraction of total
    /// cluster cores.
    pub fn envelope(&self, t: Hours) -> Fraction {
        let h = t.get();
        let day = (h / 24.0).floor() as usize;
        let scale = self.config.day_scale[day % self.config.day_scale.len()];
        let phase = std::f64::consts::TAU * (h - self.config.peak_hour) / 24.0;
        let s = (0.5 * (1.0 + phase.cos())).powf(self.config.peak_sharpness);
        // Rescale so the envelope saturates at 1 across the plateau.
        let edge_phase = std::f64::consts::PI * self.config.plateau_hours / 24.0;
        let edge = (0.5 * (1.0 + edge_phase.cos())).powf(self.config.peak_sharpness);
        let s = (s / edge).min(1.0);
        let lo = self.config.trough_utilization.get();
        let hi = self.config.peak_utilization.get() * scale;
        let mut u = lo + (hi - lo).max(0.0) * s;
        if let Some(bump) = self.config.second_peak {
            let hour_of_day = h.rem_euclid(24.0);
            let offset = (hour_of_day - bump.hour).abs();
            if offset < bump.width_hours {
                // Raised-cosine bump; the envelope takes the larger of
                // the diurnal curve and the bump.
                let shape = 0.5 * (1.0 + (core::f64::consts::PI * offset / bump.width_hours).cos());
                u = u.max(lo + (bump.utilization - lo).max(0.0) * shape);
            }
        }
        Fraction::saturating(u)
    }

    /// Utilization contributed by one workload at time `t` (fraction of
    /// total cluster cores occupied by that workload).
    pub fn utilization(&self, kind: WorkloadKind, t: Hours) -> Fraction {
        let base = self.envelope(t).get() * self.config.mix.share(kind);
        let i = kind.index();
        let noise = 1.0
            + self.config.noise_amplitude
                * (std::f64::consts::TAU * t.get() / self.periods[i] + self.phases[i]).sin();
        Fraction::saturating(base * noise)
    }

    /// Total cluster utilization at time `t` (sum over workloads).
    pub fn total_utilization(&self, t: Hours) -> Fraction {
        Fraction::saturating(
            WorkloadKind::ALL
                .iter()
                .map(|&k| self.utilization(k, t).get())
                .sum(),
        )
    }

    /// Target number of occupied cores for `kind` at `t` in a cluster
    /// with `total_cores` cores.
    pub fn target_cores(&self, kind: WorkloadKind, t: Hours, total_cores: usize) -> usize {
        (self.utilization(kind, t).get() * total_cores as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace() -> DiurnalTrace {
        DiurnalTrace::new(TraceConfig::paper_default())
    }

    #[test]
    fn peak_and_trough_levels() {
        let t = trace();
        let peak = t.total_utilization(Hours::new(20.0));
        assert!((peak.get() - 0.95).abs() < 0.03, "peak {peak}");
        let trough = t.total_utilization(Hours::new(8.0));
        assert!((trough.get() - 0.35).abs() < 0.03, "trough {trough}");
    }

    #[test]
    fn second_day_peak_is_scaled() {
        let t = trace();
        let peak1 = t.envelope(Hours::new(20.0));
        let peak2 = t.envelope(Hours::new(44.0));
        assert!(peak2 < peak1);
        assert!((peak2.get() / peak1.get() - 0.98 / 1.0).abs() < 0.02);
    }

    #[test]
    fn peak_is_at_configured_hour() {
        let t = trace();
        let at_peak = t.envelope(Hours::new(20.0)).get();
        for h in [16.0, 18.0, 22.0, 24.0] {
            assert!(t.envelope(Hours::new(h)).get() <= at_peak, "hour {h}");
        }
    }

    #[test]
    fn shares_respected_at_peak() {
        let t = trace();
        let total = t.total_utilization(Hours::new(20.0)).get();
        let search = t
            .utilization(WorkloadKind::WebSearch, Hours::new(20.0))
            .get();
        assert!((search / total - 0.25).abs() < 0.03);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = trace();
        let b = trace();
        for i in 0..100 {
            let t = Hours::new(i as f64 * 0.48);
            assert_eq!(a.total_utilization(t), b.total_utilization(t));
        }
    }

    #[test]
    fn different_seed_changes_noise_only_slightly() {
        let mut cfg = TraceConfig::paper_default();
        cfg.seed = 999;
        let a = trace();
        let b = DiurnalTrace::new(cfg);
        let t = Hours::new(20.0);
        let diff = (a.total_utilization(t).get() - b.total_utilization(t).get()).abs();
        assert!(
            diff < 2.0 * 0.015 + 1e-6,
            "noise-level difference, got {diff}"
        );
    }

    #[test]
    fn target_cores_scales() {
        let t = trace();
        let cores = t.target_cores(WorkloadKind::DataCaching, Hours::new(20.0), 3200);
        // 30% share of ~95% of 3200 cores ≈ 912.
        assert!((cores as f64 - 912.0).abs() < 60.0, "cores {cores}");
    }

    #[test]
    #[should_panic(expected = "day_scale must not be empty")]
    fn empty_day_scale_rejected() {
        let mut cfg = TraceConfig::paper_default();
        cfg.day_scale.clear();
        DiurnalTrace::new(cfg);
    }

    proptest! {
        /// Utilization is always a valid fraction everywhere on the trace.
        #[test]
        fn utilization_in_bounds(h in 0.0f64..48.0) {
            let t = trace();
            for kind in WorkloadKind::ALL {
                let u = t.utilization(kind, Hours::new(h)).get();
                prop_assert!((0.0..=1.0).contains(&u));
            }
            prop_assert!(t.total_utilization(Hours::new(h)).get() <= 1.0);
        }

        /// The envelope stays between trough and peak levels.
        #[test]
        fn envelope_bounded(h in 0.0f64..48.0) {
            let t = trace();
            let e = t.envelope(Hours::new(h)).get();
            prop_assert!(e >= 0.35 - 1e-9);
            prop_assert!(e <= 0.95 + 1e-9);
        }
    }
}
