//! Span-tracing integration tests: the tracer must be deterministic
//! and observational.
//!
//! The contract: an enabled trace is a pure function of the simulation
//! — every record except the wall-clock `dur_ns` fields is bit-identical
//! across thread counts and between a recording run and its replay —
//! and enabling it never perturbs the simulation itself. With tracing
//! disabled the engine holds no tracer at all, so the disabled path
//! adds zero timestamps (pinned structurally here and by the
//! differential tests).

use vmt_core::PolicyKind;
use vmt_dcsim::{
    ClusterConfig, RecordingScheduler, ReplayHandle, ReplayScheduler, Simulation, TelemetryConfig,
    TraceHandle, TraceSpec, ZoneSpec,
};
use vmt_telemetry::{SpanRecord, TraceBuffer, DECISION_TOP_K};
use vmt_units::Hours;
use vmt_workload::{DiurnalTrace, TraceConfig};

const SERVERS: usize = 40;
const SERVERS_PER_ZONE: usize = 20;
const HOURS: f64 = 6.0;

/// A two-zone 40-server cluster and its matching 6 h trace.
fn zoned_config() -> (ClusterConfig, TraceConfig) {
    let mut cluster = ClusterConfig::paper_default(SERVERS);
    cluster.seed = 7;
    // Two 20-server zones: one rack per row, one row per zone.
    let mut spec = ZoneSpec::paper_default();
    spec.racks_per_row = 1;
    spec.rows_per_zone = 1;
    cluster.topology = Some(spec);
    let mut trace = TraceConfig {
        horizon: Hours::new(HOURS),
        ..TraceConfig::paper_default()
    };
    trace.seed = trace.seed.wrapping_add(7);
    (cluster, trace)
}

fn zoned_sim(threads: usize) -> Simulation {
    let (cluster, trace) = zoned_config();
    let policy = PolicyKind::vmt_wa(22.0);
    let scheduler = policy.build(&cluster);
    Simulation::new(cluster, DiurnalTrace::new(trace), scheduler).with_threads(threads)
}

/// Runs the zoned simulation with tracing enabled and returns the
/// deposited buffer alongside the result.
fn traced_run(threads: usize, spec: TraceSpec) -> (vmt_dcsim::SimulationResult, TraceBuffer) {
    let telemetry = TelemetryConfig::new().with_trace(spec);
    let tracer = telemetry.tracer.clone();
    let result = zoned_sim(threads).with_telemetry(telemetry).run();
    let buffer = tracer.take().expect("run deposits a trace buffer");
    (result, buffer)
}

/// Enabled tracing is observational and deterministic: a traced run
/// matches the bare run digest-for-digest at every tick, the final
/// results are bit-identical, and the emitted records — durations
/// aside — are identical at threads 1 and 8.
#[test]
fn traced_run_is_pure_and_identical_across_threads() {
    let mut buffers: Vec<TraceBuffer> = Vec::new();
    for threads in [1usize, 8] {
        let mut bare = zoned_sim(threads);
        let telemetry = TelemetryConfig::new().with_trace(TraceSpec::default());
        let tracer = telemetry.tracer.clone();
        let mut traced = zoned_sim(threads).with_telemetry(telemetry);

        // Lockstep march with per-tick digest comparison: a divergence
        // is caught at the tick that caused it.
        let mut tick = 0u64;
        loop {
            let bare_stepped = bare.step();
            assert_eq!(
                bare_stepped,
                traced.step(),
                "horizon mismatch at tick {tick} threads {threads}"
            );
            if !bare_stepped {
                break;
            }
            tick += 1;
            assert_eq!(
                bare.state_digest(),
                traced.state_digest(),
                "tracing perturbed tick {tick} threads {threads}"
            );
        }
        let (bare_result, _) = bare.finish();
        let (traced_result, _) = traced.finish();
        assert_eq!(
            bare_result, traced_result,
            "tracing perturbed the final result at threads {threads}"
        );
        buffers.push(tracer.take().expect("trace buffer deposited"));
    }

    let [one, eight] = &buffers[..] else {
        unreachable!()
    };
    assert_eq!(one.dropped, eight.dropped);
    assert_eq!(
        one.without_durations(),
        eight.without_durations(),
        "trace records differ between threads 1 and 8"
    );
    // Durations are the *only* thing allowed to differ: the rendered
    // traces must agree event-for-event once durations are zeroed.
    let zeroed = |buffer: &TraceBuffer| TraceBuffer {
        records: buffer.without_durations(),
        dropped: buffer.dropped,
    };
    assert_eq!(
        vmt_telemetry::render_trace(&zeroed(one)),
        vmt_telemetry::render_trace(&zeroed(eight)),
        "rendered traces differ between threads 1 and 8 beyond durations"
    );
}

/// A recording run and its replay emit the same trace (modulo
/// durations): both drive the detail-free `place_batch_traced` default,
/// so the record stream — ticks, phases, placements, zones — is a pure
/// function of the simulated schedule either wrapper re-derives.
#[test]
fn record_and_replay_emit_identical_traces() {
    let (cluster, trace_cfg) = zoned_config();
    let policy = PolicyKind::vmt_wa(22.0);

    // Recording pass, traced.
    let handle = TraceHandle::new();
    let recorder = RecordingScheduler::new(policy.build(&cluster), handle.clone());
    let telemetry = TelemetryConfig::new().with_trace(TraceSpec::default());
    let recording_tracer = telemetry.tracer.clone();
    let (result, end_servers) = Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace_cfg.clone()),
        Box::new(recorder),
    )
    .with_telemetry(telemetry)
    .run_returning_servers();
    let header = vmt_telemetry::replay::TraceHeader {
        schema_version: vmt_telemetry::replay::TRACE_SCHEMA_VERSION,
        policy: "vmt-wa".to_owned(),
        servers: SERVERS as u64,
        hours: HOURS,
        cluster_seed: cluster.seed,
        trace_seed: trace_cfg.seed,
        tick_seconds: cluster.tick.get(),
        ticks: 0,
    };
    let mut placement_trace = handle.into_trace(header, &result, &end_servers);
    placement_trace.header.ticks = placement_trace.footer.ticks_run;
    let recorded = recording_tracer.take().expect("recording deposits a trace");

    // Replay pass, traced, reconstructed purely from the written trace
    // text the way `vmt-experiments replay` does it.
    let reparsed = vmt_telemetry::replay::PlacementTrace::parse(&placement_trace.to_jsonl())
        .expect("recorded trace parses");
    let report = ReplayHandle::new();
    let replayer = ReplayScheduler::new(reparsed, report.clone());
    let telemetry = TelemetryConfig::new().with_trace(TraceSpec::default());
    let replay_tracer = telemetry.tracer.clone();
    Simulation::new(cluster, DiurnalTrace::new(trace_cfg), Box::new(replayer))
        .with_telemetry(telemetry)
        .run();
    let replayed = replay_tracer.take().expect("replay deposits a trace");

    assert!(
        matches!(
            report.verdict(),
            vmt_telemetry::replay::ReplayVerdict::BitIdentical { .. }
        ),
        "replay diverged"
    );
    assert_eq!(recorded.dropped, replayed.dropped);
    assert_eq!(
        recorded.without_durations(),
        replayed.without_durations(),
        "record and replay traces differ beyond durations"
    );
}

/// The rendered trace of a real zoned run passes the strict validator
/// with the shape the run implies: one tick span per tick, six phase
/// spans per tick, one zone span per zone per tick, and paired
/// placement/decision instants for every sampled job.
#[test]
fn rendered_trace_validates_with_expected_shape() {
    let spec = TraceSpec {
        sample_every: 10,
        ..TraceSpec::default()
    };
    let (_, buffer) = traced_run(1, spec);
    let ticks = (HOURS * 60.0) as usize;
    let json = vmt_telemetry::render_trace(&buffer);
    let stats = vmt_telemetry::validate_trace(&json).expect("trace validates");
    assert_eq!(stats.ticks, ticks);
    assert_eq!(stats.phases, 6 * ticks, "six top-level phases per tick");
    assert_eq!(
        stats.zones,
        (SERVERS / SERVERS_PER_ZONE) * ticks,
        "one span per zone per tick"
    );
    assert!(stats.placements > 0, "no sampled placements over {HOURS} h");
    assert_eq!(
        stats.placements, stats.decisions,
        "every sampled placement carries its decision"
    );
    assert_eq!(stats.dropped, 0);

    // The parsed form round-trips through the strict serializer.
    let trace = vmt_telemetry::parse_trace(&json).expect("parses");
    let rewritten = serde_json::to_string(&trace).expect("serializes");
    assert_eq!(
        vmt_telemetry::parse_trace(&rewritten).expect("re-parses"),
        trace
    );
}

/// The explain chain holds for every sampled job: its decision and
/// placement records pair up on the same tick, a balancer rung's chosen
/// server is the best candidate of its snapshot with the matching
/// winning key, and the recorded zone is the chosen server's zone.
#[test]
fn decision_records_reconstruct_the_placement_chain() {
    let spec = TraceSpec {
        sample_every: 7,
        ..TraceSpec::default()
    };
    let (_, buffer) = traced_run(1, spec);

    let mut decisions = 0usize;
    for record in &buffer.records {
        let SpanRecord::Decision {
            tick,
            job,
            rung,
            chosen,
            winning_key,
            candidates,
            ..
        } = record
        else {
            continue;
        };
        decisions += 1;
        assert!(!rung.is_empty(), "job {job}: empty rung label");
        assert!(
            candidates.len() <= DECISION_TOP_K,
            "job {job}: candidate snapshot exceeds top-k"
        );
        // The snapshot is best-first: keys ascend.
        for pair in candidates.windows(2) {
            assert!(
                pair[0].key <= pair[1].key,
                "job {job}: candidates not sorted by key"
            );
        }
        // A balancer rung picks the snapshot's best candidate, and the
        // winning key is that candidate's key.
        if rung.ends_with("balancer") {
            let chosen = chosen.expect("balancer rung placed the job");
            let best = candidates.first().expect("balancer rung has candidates");
            assert_eq!(chosen, best.server, "job {job}: balancer skipped the best");
            assert_eq!(
                *winning_key,
                Some(best.key),
                "job {job}: winning key is not the chosen candidate's"
            );
        }
        // The paired placement instant: same job, same tick, the same
        // chosen server, and the zone that server lives in.
        let placement = buffer
            .records
            .iter()
            .find(|r| matches!(r, SpanRecord::Placement { job: j, .. } if j == job))
            .unwrap_or_else(|| panic!("job {job}: no placement record"));
        let SpanRecord::Placement {
            tick: placed_tick,
            server,
            zone,
            duration_ticks,
            ..
        } = placement
        else {
            unreachable!()
        };
        assert_eq!(placed_tick, tick, "job {job}: decision/placement tick skew");
        assert_eq!(
            *server, *chosen,
            "job {job}: decision/placement server skew"
        );
        match *server {
            Some(server) => {
                assert_eq!(
                    *zone,
                    Some(server / SERVERS_PER_ZONE as u32),
                    "job {job}: zone is not the chosen server's"
                );
                assert!(*duration_ticks > 0, "job {job}: zero-length placement");
            }
            None => assert_eq!(*zone, None, "job {job}: dropped job carries a zone"),
        }
    }
    assert!(decisions > 0, "no decisions sampled over {HOURS} h");
}

/// Sampling strides and pinned job lists select exactly the jobs they
/// promise.
#[test]
fn sampling_selects_the_promised_jobs() {
    let spec = TraceSpec {
        sample_every: 0,
        jobs: vec![3, 11],
        ..TraceSpec::default()
    };
    let (_, buffer) = traced_run(1, spec);
    let mut seen = Vec::new();
    for record in &buffer.records {
        if let SpanRecord::Placement { job, .. } = record {
            if !seen.contains(job) {
                seen.push(*job);
            }
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![3, 11], "pinned job list not honoured");
}

/// Without `with_trace` the engine holds no tracer: nothing is
/// deposited, and the tick loop's traced branches are never taken — the
/// disabled path costs zero extra timestamps by construction.
#[test]
fn disabled_tracing_deposits_nothing() {
    let telemetry = TelemetryConfig::new();
    let tracer = telemetry.tracer.clone();
    zoned_sim(1).with_telemetry(telemetry).run();
    assert!(tracer.take().is_none(), "no trace was requested");
}
