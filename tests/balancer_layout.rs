//! Layout differentials for the zone-sharded tournament balancer.
//!
//! The balancer's zoned layout is a pure performance representation: it
//! must pick the exact `(key, index)` argmin the flat tournament picks,
//! tie-breaks included, so full simulations are bit-identical under any
//! `VMT_BALANCER_LAYOUT` override. The fast tests prove that at 1k
//! servers across forced zone shapes; the `#[ignore]`d tests extend the
//! contract to the 1M tier — layouts x thread counts land on identical
//! per-tick digests, and a 1M snapshot restores bit-identically.
//!
//! `VMT_BALANCER_LAYOUT` is process-global, so every test that sets it
//! holds [`ENV_LOCK`] for its whole run (the variable is re-read at
//! every balancer resize, not just at construction).

use std::sync::{Mutex, MutexGuard};

use vmt::core::{restore_simulation, PolicyKind};
use vmt::dcsim::{ClusterConfig, Simulation, SimulationResult, Snapshot};
use vmt::units::Hours;
use vmt::workload::{DiurnalTrace, TraceConfig};

/// Serializes access to the `VMT_BALANCER_LAYOUT` process environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Sets (or clears) the layout override for the guard's lifetime.
struct LayoutGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl LayoutGuard {
    fn set(layout: Option<&str>) -> Self {
        let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        match layout {
            Some(v) => std::env::set_var("VMT_BALANCER_LAYOUT", v),
            None => std::env::remove_var("VMT_BALANCER_LAYOUT"),
        }
        Self(guard)
    }
}

impl Drop for LayoutGuard {
    fn drop(&mut self) {
        std::env::remove_var("VMT_BALANCER_LAYOUT");
    }
}

fn build(policy: PolicyKind, servers: usize, hours: f64, threads: usize) -> Simulation {
    let cluster = ClusterConfig::paper_default(servers);
    let mut trace = TraceConfig::paper_default();
    trace.horizon = Hours::new(hours);
    Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace),
        policy.build(&cluster),
    )
    .with_threads(threads)
}

/// Runs a full simulation under a forced balancer layout.
fn run_layout(
    layout: Option<&str>,
    policy: PolicyKind,
    servers: usize,
    hours: f64,
) -> SimulationResult {
    let _guard = LayoutGuard::set(layout);
    build(policy, servers, hours, 1).run()
}

/// Runs under a forced layout and thread count, collecting every
/// per-tick state digest alongside the final result.
fn run_layout_digests(
    layout: Option<&str>,
    servers: usize,
    hours: f64,
    threads: usize,
) -> (Vec<u64>, SimulationResult) {
    let _guard = LayoutGuard::set(layout);
    let mut sim = build(PolicyKind::vmt_wa(22.0), servers, hours, threads);
    let mut digests = Vec::new();
    while sim.step() {
        digests.push(sim.state_digest());
    }
    let (result, _) = sim.finish();
    (digests, result)
}

/// `Auto` resolves flat (the measured-fastest layout at every scale);
/// forced zoned spans must still reproduce the flat run bit for bit —
/// from one giant zone through 125 small ones, including spans that
/// don't divide the leaf count.
#[test]
fn forced_zoned_layouts_match_flat_at_1k() {
    const SERVERS: usize = 1000;
    const HOURS: f64 = 6.0;
    for policy in [PolicyKind::CoolestFirst, PolicyKind::vmt_wa(22.0)] {
        let flat = run_layout(Some("flat"), policy, SERVERS, HOURS);
        let auto = run_layout(None, policy, SERVERS, HOURS);
        assert_eq!(flat, auto, "{policy:?}: auto should resolve flat at 1k");
        // Valid spans are powers of 8; at 1k leaves these force one
        // giant zone, 2 zones, 16 zones, and 125 zones respectively.
        for span in [4096usize, 512, 64, 8] {
            let zoned = run_layout(Some(&format!("zoned:{span}")), policy, SERVERS, HOURS);
            assert_eq!(flat, zoned, "{policy:?}: zoned:{span} diverged from flat");
        }
    }
}

/// At a size spanning multiple default-span zones, the explicit
/// `zoned` spelling (default span) and `flat` must agree with `Auto` —
/// the layout is invisible in results at any scale.
#[test]
fn auto_matches_explicit_layouts_at_5k() {
    const SERVERS: usize = 5000;
    const HOURS: f64 = 2.0;
    let policy = PolicyKind::vmt_wa(22.0);
    let auto = run_layout(None, policy, SERVERS, HOURS);
    let zoned = run_layout(Some("zoned"), policy, SERVERS, HOURS);
    let flat = run_layout(Some("flat"), policy, SERVERS, HOURS);
    assert_eq!(auto, zoned, "auto and explicit zoned diverged at 5k");
    assert_eq!(auto, flat, "zoned and flat diverged at 5k");
}

/// The 1M tier's determinism matrix: layouts {flat (auto), zoned} x
/// threads {1, 8} all land on the single-thread flat run's per-tick
/// digest sequence and final result. Short horizon — each run is a
/// full 1M-server simulation; the 100k suites cover long horizons.
///
/// Run with: `cargo test --release million -- --ignored`
#[test]
#[ignore = "1M-server runs: minutes of wall clock, run explicitly"]
fn million_tier_is_identical_across_layouts_and_threads() {
    const SERVERS: usize = 1_000_000;
    const HOURS: f64 = 1.0;
    let (baseline_digests, baseline) = run_layout_digests(None, SERVERS, HOURS, 1);
    assert!(!baseline_digests.is_empty());
    for (layout, threads) in [(None, 8), (Some("zoned"), 1), (Some("zoned"), 8)] {
        let (digests, result) = run_layout_digests(layout, SERVERS, HOURS, threads);
        let label = format!("layout {layout:?} x{threads}");
        assert_eq!(digests, baseline_digests, "{label}: digest sequence");
        assert_eq!(result, baseline, "{label}: final result");
    }
}

/// Snapshot/restore at the 1M tier: checkpoint the run midway,
/// round-trip the container, and hold the restored run's remaining
/// ticks digest-identical to the continuous one at threads 1 and 8.
///
/// Run with: `cargo test --release million -- --ignored`
#[test]
#[ignore = "1M-server runs: minutes of wall clock, run explicitly"]
fn million_tier_snapshot_restores_bit_identically() {
    const SERVERS: usize = 1_000_000;
    const HOURS: f64 = 1.0;
    let _guard = LayoutGuard::set(None);
    let (digests, result) = {
        let mut sim = build(PolicyKind::vmt_wa(22.0), SERVERS, HOURS, 1);
        let mut digests = Vec::new();
        while sim.step() {
            digests.push(sim.state_digest());
        }
        let (result, _) = sim.finish();
        (digests, result)
    };
    let mid = (digests.len() / 2) as u64;
    let mut sim = build(PolicyKind::vmt_wa(22.0), SERVERS, HOURS, 1);
    sim.run_until(mid);
    let snapshot = sim.snapshot().expect("1M snapshot");
    let decoded = Snapshot::decode(&snapshot.encode()).expect("container round-trips");
    assert_eq!(decoded.digest(), snapshot.digest());
    for threads in [1usize, 8] {
        let mut restored = restore_simulation(&decoded)
            .unwrap_or_else(|e| panic!("restore at x{threads} failed: {e}"))
            .with_threads(threads);
        assert_eq!(restored.current_tick(), mid);
        assert_eq!(
            restored.state_digest(),
            digests[mid as usize - 1],
            "x{threads}: state at restore"
        );
        let mut t = mid as usize;
        while restored.step() {
            assert_eq!(
                restored.state_digest(),
                digests[t],
                "x{threads}: diverged at tick {}",
                t + 1
            );
            t += 1;
        }
        assert_eq!(t, digests.len(), "x{threads}: tick count");
        let (restored_result, _) = restored.finish();
        assert_eq!(restored_result, result, "x{threads}: final result");
    }
}
