//! Serde round-trip tests for the public data structures: a saved
//! configuration or result must reload losslessly (the contract behind
//! storing sweeps and sharing runs).

use vmt::core::PolicyKind;
use vmt::dcsim::{ClusterConfig, Simulation};
use vmt::units::{Celsius, Hours, Minutes, Watts};
use vmt::workload::{DiurnalTrace, RecordedTrace, SecondPeak, TraceConfig, WorkloadMix};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn cluster_config_round_trips() {
    let mut config = ClusterConfig::paper_default(42);
    config.oracle_wax_state = true;
    config.heatmap_stride = 7;
    let back: ClusterConfig = round_trip(&config);
    assert_eq!(back, config);
    assert_eq!(back.total_cores(), 42 * 32);
}

#[test]
fn cluster_config_round_trips_waxless_with_exponential_durations() {
    // The non-default corners: `wax: None` (Option field) and the
    // exponential duration model (non-default enum variant).
    let mut config = ClusterConfig::without_wax(7);
    config.duration_model = vmt::workload::DurationModel::Exponential;
    config.seed = u64::MAX;
    let back: ClusterConfig = round_trip(&config);
    assert_eq!(back, config);
    assert!(back.wax.is_none());
}

#[test]
fn heatmap_round_trips_exactly() {
    use vmt::dcsim::Heatmap;
    // Awkward float values on purpose: exact round-trip must hold for
    // every cell, including negatives, subnormal-ish magnitudes, and
    // values with no short decimal form.
    let map = Heatmap {
        row_interval: 300.0,
        rows: vec![
            vec![0.1, 35.7, -4.25, 1.0 / 3.0],
            vec![1e-300, 2.0f64.powi(60), 0.0, -0.0],
            vec![],
        ],
    };
    let back: Heatmap = round_trip(&map);
    assert_eq!(back, map);
    for (row, original) in back.rows.iter().zip(&map.rows) {
        for (a, b) in row.iter().zip(original) {
            assert_eq!(a.to_bits(), b.to_bits(), "cell changed: {b} -> {a}");
        }
    }
    assert_eq!(back.max(), map.max());
    // An empty heatmap survives too.
    let empty: Heatmap = round_trip(&Heatmap::default());
    assert!(empty.is_empty());
}

#[test]
fn trace_config_round_trips_with_second_peak() {
    let mut config = TraceConfig::paper_default();
    config.second_peak = Some(SecondPeak {
        hour: 13.0,
        utilization: 0.8,
        width_hours: 2.0,
    });
    config.day_scale = vec![1.0, 0.97, 1.02];
    let back: TraceConfig = round_trip(&config);
    assert_eq!(back, config);
    // The reloaded config drives the generator identically.
    let a = DiurnalTrace::new(config);
    let b = DiurnalTrace::new(back);
    for h in [0.0, 13.0, 20.0, 44.5] {
        assert_eq!(a.envelope(Hours::new(h)), b.envelope(Hours::new(h)));
    }
}

#[test]
fn recorded_trace_round_trips_via_serde_and_csv() {
    let trace = RecordedTrace::from_samples(
        Minutes::new(15.0),
        vec![[0.1, 0.1, 0.05, 0.01, 0.05], [0.2, 0.15, 0.1, 0.02, 0.1]],
    )
    .unwrap();
    let via_serde: RecordedTrace = round_trip(&trace);
    assert_eq!(via_serde, trace);
    let via_csv = RecordedTrace::from_csv_str(&trace.to_csv()).unwrap();
    assert_eq!(via_csv.len(), trace.len());
}

#[test]
fn workload_mix_round_trips() {
    let mix = WorkloadMix::paper_default();
    let back: WorkloadMix = round_trip(&mix);
    assert_eq!(back, mix);
    assert_eq!(back.hot_fraction(), mix.hot_fraction());
}

#[test]
fn units_round_trip_transparently() {
    // Unit newtypes serialize as bare numbers (serde(transparent)).
    assert_eq!(serde_json::to_string(&Watts::new(500.0)).unwrap(), "500.0");
    assert_eq!(serde_json::to_string(&Celsius::new(35.7)).unwrap(), "35.7");
    let w: Watts = serde_json::from_str("123.5").unwrap();
    assert_eq!(w, Watts::new(123.5));
}

#[test]
fn simulation_result_round_trips() {
    let mut trace = TraceConfig::paper_default();
    trace.horizon = Hours::new(2.0);
    let cluster = ClusterConfig::paper_default(4);
    let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
    let result = Simulation::new(cluster, DiurnalTrace::new(trace), sched).run();
    let back: vmt::dcsim::SimulationResult = round_trip(&result);
    // Exact equality requires serde_json's `float_roundtrip` feature:
    // its default float parser is up to 1 ulp lossy.
    assert_eq!(back, result);
    assert_eq!(back.scheduler_name, result.scheduler_name);
    assert_eq!(back.cooling, result.cooling);
    assert_eq!(back.electrical, result.electrical);
    assert_eq!(back.avg_temp, result.avg_temp);
    assert_eq!(back.stored_energy, result.stored_energy);
    assert_eq!(back.melt_heatmap, result.melt_heatmap);
    assert_eq!(back.placements, result.placements);
    assert_eq!(back.peak_cooling(), result.peak_cooling());
}

#[test]
fn saved_scheduler_state_round_trips_for_every_policy() {
    use vmt::core::scheduler_from_saved;
    use vmt::dcsim::SavedState;

    let cluster = ClusterConfig::paper_default(10);
    for name in PolicyKind::NAMES {
        let kind = PolicyKind::parse(name, 22.0).expect("advertised name parses");
        let saved = kind.build(&cluster).save_state().expect("policy saves");
        let back: SavedState = round_trip(&saved);
        assert_eq!(back.kind, saved.kind);
        // The reloaded state rebuilds a scheduler whose own save is
        // byte-identical — the full state survived the round trip.
        let rebuilt = scheduler_from_saved(&back).expect("policy rebuilds");
        let resaved = rebuilt.save_state().expect("rebuilt policy saves");
        assert_eq!(
            serde_json::to_string(&resaved).unwrap(),
            serde_json::to_string(&saved).unwrap(),
            "{name} state changed across a serde round trip"
        );
    }
}

#[test]
fn trace_descriptor_round_trips_and_rebuilds() {
    use vmt::workload::{LoadTrace, TraceDescriptor, WorkloadKind};

    let mut config = TraceConfig::paper_default();
    config.horizon = Hours::new(6.0);
    config.seed = 99;
    let trace = DiurnalTrace::new(config);
    let descriptor = trace.descriptor().expect("diurnal traces are describable");
    let back: TraceDescriptor = round_trip(&descriptor);
    assert_eq!(back, descriptor);
    // Rebuilding from the reloaded descriptor drives the generator
    // identically and stays self-describing.
    let rebuilt = back.build();
    assert_eq!(rebuilt.horizon(), LoadTrace::horizon(&trace));
    assert_eq!(rebuilt.descriptor(), Some(back));
    for h in [0.0, 3.5, 5.9] {
        let t = Hours::new(h);
        for kind in WorkloadKind::ALL {
            assert_eq!(
                rebuilt.utilization(kind, t),
                LoadTrace::utilization(&trace, kind, t)
            );
        }
    }
}

#[test]
fn snapshot_round_trips_through_plain_serde() {
    // The container format has its own tests; this pins the payload
    // itself as a plain serde document (what `Snapshot::decode` parses
    // after the header checks).
    use vmt::dcsim::Snapshot;

    let mut trace = TraceConfig::paper_default();
    trace.horizon = Hours::new(2.0);
    let cluster = ClusterConfig::paper_default(4);
    let mut sim = Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace),
        PolicyKind::vmt_wa(22.0).build(&cluster),
    );
    sim.run_until(40);
    let snapshot = sim.snapshot().expect("snapshots");
    let back: Snapshot = round_trip(&snapshot);
    assert_eq!(back.tick, snapshot.tick);
    assert_eq!(back.digest(), snapshot.digest());
    assert_eq!(back.encode(), snapshot.encode());
}
