//! Cross-crate integration tests below the experiment level: the wax,
//! thermal, power, and estimator substrates composed through a real
//! `Server`, plus property tests over whole mini-simulations.

use proptest::prelude::*;
use vmt::core::PolicyKind;
use vmt::dcsim::{ClusterConfig, Server, ServerId, Simulation};
use vmt::units::{Celsius, Hours, Seconds, Watts};
use vmt::workload::{DiurnalTrace, Job, JobId, TraceConfig, WorkloadKind};

/// A fully loaded hot server melts its wax; the on-server estimator
/// tracks the physical melt through the full melt-freeze cycle.
#[test]
fn server_estimator_tracks_melt_freeze_cycle() {
    let config = ClusterConfig::paper_default(1);
    let mut server = Server::from_config(ServerId(0), &config);
    for i in 0..32 {
        server.start_job(&Job::new(
            JobId(i),
            WorkloadKind::VideoEncoding,
            Seconds::new(600.0),
        ));
    }
    // Melt for 8 hours.
    for _ in 0..480 {
        server.tick(Seconds::new(60.0));
    }
    assert!(server.melt_fraction().get() > 0.8);
    let err = (server.melt_fraction().get() - server.reported_melt_fraction().get()).abs();
    assert!(err < 0.1, "estimator error while melting: {err:.3}");

    // Unload and freeze overnight.
    for i in 0..32 {
        server.end_job(JobId(i));
    }
    for _ in 0..(12 * 60) {
        server.tick(Seconds::new(60.0));
    }
    assert!(server.melt_fraction().get() < 0.05, "wax should refreeze");
    let err = (server.melt_fraction().get() - server.reported_melt_fraction().get()).abs();
    assert!(err < 0.1, "estimator error after refreeze: {err:.3}");
}

/// The cooling-load identity holds at every tick of a real simulation:
/// `rejected = electrical − d(stored)/dt`, within numerical tolerance.
#[test]
fn per_tick_energy_identity() {
    let mut trace = TraceConfig::paper_default();
    trace.horizon = Hours::new(30.0);
    let cluster = ClusterConfig::paper_default(20);
    let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
    let r = Simulation::new(cluster, DiurnalTrace::new(trace), sched).run();
    // Skip the cold-start warm-up: the initial load step drives a large
    // *sensible* heat flux into the solid wax (not tracked by the latent
    // `stored_energy` series) until the cluster reaches its first
    // quasi-steady state.
    for t in 120..r.cooling.len() {
        let rejected = r.cooling.samples()[t].get();
        let electrical = r.electrical.samples()[t].get();
        let stored_delta = (r.stored_energy[t] - r.stored_energy[t - 1]).get() / 60.0;
        // The identity is exact for the latent component; sensible wax
        // heating contributes a small residual.
        let residual = (electrical - rejected - stored_delta).abs();
        assert!(
            residual < 0.08 * electrical.max(1.0),
            "tick {t}: residual {residual:.1} W of {electrical:.1} W"
        );
    }
}

/// The wax-equipped cluster and the waxless cluster draw identical
/// electrical power under the same policy and seed: wax changes *when*
/// heat leaves, never how much work is done.
#[test]
fn wax_does_not_change_electrical_power() {
    let mut trace = TraceConfig::paper_default();
    trace.horizon = Hours::new(24.0);
    let with_wax = {
        let cluster = ClusterConfig::paper_default(10);
        let sched = PolicyKind::RoundRobin.build(&cluster);
        Simulation::new(cluster, DiurnalTrace::new(trace.clone()), sched).run()
    };
    let without = {
        let cluster = ClusterConfig::without_wax(10);
        let sched = PolicyKind::RoundRobin.build(&cluster);
        Simulation::new(cluster, DiurnalTrace::new(trace), sched).run()
    };
    assert_eq!(with_wax.electrical, without.electrical);
    assert_eq!(without.max_stored_energy().get(), 0.0);
}

/// Inlet temperature variation shifts each server's operating point by
/// exactly the inlet offset at idle.
#[test]
fn inlet_offsets_idle_operating_points() {
    let mut config = ClusterConfig::paper_default(16);
    config.inlet =
        vmt::thermal::InletModel::normal(Celsius::new(22.0), vmt::units::DegC::new(2.0), 1234);
    let servers: Vec<Server> = (0..16)
        .map(|i| Server::from_config(ServerId(i), &config))
        .collect();
    for s in &servers {
        let expected_rise = Watts::new(100.0).get() / s.air().capacity_rate().get();
        let actual_rise = (s.air_at_wax() - s.inlet()).get();
        assert!((actual_rise - expected_rise).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the GV, a full simulation never violates the basic
    /// invariants: no drops, melt fractions in range, cooling load
    /// non-negative and bounded by nameplate + maximum release.
    #[test]
    fn simulation_invariants_hold_for_any_gv(gv in 12.0f64..34.0) {
        let mut trace = TraceConfig::paper_default();
        trace.horizon = Hours::new(26.0);
        let cluster = ClusterConfig::paper_default(10);
        let sched = PolicyKind::vmt_wa(gv).build(&cluster);
        let r = Simulation::new(cluster, DiurnalTrace::new(trace), sched).run();
        prop_assert_eq!(r.dropped_jobs, 0);
        prop_assert!(r.max_melt_fraction() <= 1.0);
        for w in r.cooling.samples() {
            prop_assert!(w.get() >= 0.0);
            prop_assert!(w.get() < 10.0 * 520.0, "cooling {w}");
        }
        for &size in &r.hot_group_sizes {
            prop_assert!((1..=10).contains(&size));
        }
    }

    /// Trace scaling: reducing the peak utilization can only reduce the
    /// peak electrical power.
    #[test]
    fn peak_power_is_monotone_in_trace_peak(peak in 0.5f64..0.95) {
        let mk = |p: f64| {
            let mut t = TraceConfig::paper_default();
            t.horizon = Hours::new(24.0);
            t.peak_utilization = vmt::units::Fraction::saturating(p);
            let cluster = ClusterConfig::paper_default(5);
            let sched = PolicyKind::RoundRobin.build(&cluster);
            Simulation::new(cluster, DiurnalTrace::new(t), sched).run()
        };
        let low = mk(peak);
        let high = mk(0.95);
        prop_assert!(low.electrical.peak() <= high.electrical.peak() + vmt::units::Watts::new(200.0));
    }
}
