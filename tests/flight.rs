//! Flight-recorder, trace-replay, and watchdog integration tests.
//!
//! Three contracts, end to end across `vmt-telemetry` and `vmt-dcsim`:
//!
//! * recording a run's placement-decision trace is observationally pure,
//!   and replaying the trace (policy bypassed) reproduces the run
//!   bit-identically — including across a JSONL serialize/parse round
//!   trip of the trace itself;
//! * arming the flight recorder and watchdogs perturbs nothing;
//! * a forced thermal violation fires a watchdog, lands an `Anomaly`
//!   event in the stream, and drops a validating flight dump with
//!   pre-anomaly context next to the configured dump path.

use vmt_core::PolicyKind;
use vmt_dcsim::{
    digest_final_state, ClusterConfig, FlightConfig, RecordingScheduler, ReplayHandle,
    ReplayScheduler, Simulation, TelemetryConfig, TraceHandle,
};
use vmt_telemetry::replay::{PlacementTrace, ReplayVerdict, TraceHeader, TRACE_SCHEMA_VERSION};
use vmt_telemetry::{validate_dump, WatchdogKind, WatchdogSpec};
use vmt_units::Hours;
use vmt_workload::{DiurnalTrace, TraceConfig};

const SERVERS: usize = 30;
const HOURS: f64 = 6.0;

fn config() -> (ClusterConfig, TraceConfig) {
    let cluster = ClusterConfig::paper_default(SERVERS);
    let trace = TraceConfig {
        horizon: Hours::new(HOURS),
        ..TraceConfig::paper_default()
    };
    (cluster, trace)
}

/// Records a VMT-WA run through the real policy stack and returns the
/// finished trace (header ticks patched from the footer, as the CLI
/// does).
fn record() -> PlacementTrace {
    let (cluster, trace_cfg) = config();
    let policy = PolicyKind::vmt_wa(22.0);
    let handle = TraceHandle::new();
    let recorder = RecordingScheduler::new(policy.build(&cluster), handle.clone());
    let header = TraceHeader {
        schema_version: TRACE_SCHEMA_VERSION,
        policy: "vmt-wa".into(),
        servers: SERVERS as u64,
        hours: HOURS,
        cluster_seed: cluster.seed,
        trace_seed: trace_cfg.seed,
        tick_seconds: cluster.tick.get(),
        ticks: 0,
    };
    // Recorded single-threaded; the replay below runs the sharded
    // parallel sweep — the trace must reproduce across thread counts.
    let (result, servers) =
        Simulation::new(cluster, DiurnalTrace::new(trace_cfg), Box::new(recorder))
            .with_threads(1)
            .run_returning_servers();
    let mut trace = handle.into_trace(header, &result, &servers);
    trace.header.ticks = trace.footer.ticks_run;
    trace
}

/// A unique scratch path for this test binary (no tempfile dependency).
fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vmt_flight_test_{}_{name}", std::process::id()))
}

#[test]
fn recorded_trace_replays_bit_identically_after_jsonl_round_trip() {
    let trace = record();
    assert!(trace.decision_count() > 0, "trace recorded no decisions");

    // The trace must survive its own wire format: serialize, reparse,
    // replay the reparsed copy.
    let reparsed = PlacementTrace::parse(&trace.to_jsonl()).expect("trace round-trips");
    assert_eq!(reparsed.footer.final_digest, trace.footer.final_digest);

    let (mut cluster, mut trace_cfg) = config();
    cluster.seed = reparsed.header.cluster_seed;
    trace_cfg.seed = reparsed.header.trace_seed;
    let report = ReplayHandle::new();
    let replayer = ReplayScheduler::new(reparsed, report.clone());
    let (result, servers) =
        Simulation::new(cluster, DiurnalTrace::new(trace_cfg), Box::new(replayer))
            .with_threads(4)
            .run_returning_servers();

    assert_eq!(
        report.verdict(),
        ReplayVerdict::BitIdentical {
            ticks_compared: trace.footer.ticks_run
        }
    );
    assert_eq!(report.missing_decisions(), 0);
    assert_eq!(result.placements, trace.footer.placements);
    assert_eq!(result.dropped_jobs, trace.footer.dropped_jobs);
    assert_eq!(
        digest_final_state(&result, &servers),
        trace.footer.final_digest
    );
}

/// The persistent tick pool must not leak into observable state: a
/// trace recorded single-threaded replays to the same verdict and final
/// digest at every pool size (serial path, small pools, more workers
/// than the machine has cores).
#[test]
fn replay_digest_is_stable_across_thread_counts() {
    let trace = record();
    let jsonl = trace.to_jsonl();
    for threads in [1usize, 2, 3, 8] {
        let reparsed = PlacementTrace::parse(&jsonl).expect("trace round-trips");
        let (mut cluster, mut trace_cfg) = config();
        cluster.seed = reparsed.header.cluster_seed;
        trace_cfg.seed = reparsed.header.trace_seed;
        let report = ReplayHandle::new();
        let replayer = ReplayScheduler::new(reparsed, report.clone());
        let (result, servers) =
            Simulation::new(cluster, DiurnalTrace::new(trace_cfg), Box::new(replayer))
                .with_threads(threads)
                .run_returning_servers();
        assert_eq!(
            report.verdict(),
            ReplayVerdict::BitIdentical {
                ticks_compared: trace.footer.ticks_run
            },
            "threads {threads}"
        );
        assert_eq!(
            digest_final_state(&result, &servers),
            trace.footer.final_digest,
            "threads {threads}"
        );
    }
}

/// Arming the full forensic stack — flight ring, all four watchdogs —
/// must not perturb the simulation by a single bit.
#[test]
fn armed_recorder_and_watchdogs_are_observationally_pure() {
    let (cluster, trace_cfg) = config();
    let policy = PolicyKind::vmt_wa(22.0);
    let baseline = Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace_cfg.clone()),
        policy.build(&cluster),
    )
    .run();

    let telemetry = TelemetryConfig::new()
        .with_flight(FlightConfig {
            capacity: 4096,
            dump_path: None,
            max_anomaly_dumps: 0,
        })
        .with_watchdogs(WatchdogSpec::default_set());
    let armed = Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace_cfg),
        policy.build(&cluster),
    )
    .with_telemetry(telemetry)
    .run();

    assert_eq!(armed, baseline, "armed forensics perturbed the simulation");
}

/// A red-line below the cluster's operating temperature forces a
/// thermal violation: the watchdog fires, the summary counts it, and a
/// validating flight dump with pre-anomaly context appears at the
/// `.anomaly1` sibling of the dump path.
#[test]
fn thermal_violation_fires_watchdog_and_dumps_context() {
    let (cluster, trace_cfg) = config();
    let policy = PolicyKind::vmt_wa(22.0);
    let dump_path = scratch("violation.dump");
    let anomaly_path = {
        let mut s = dump_path.clone().into_os_string();
        s.push(".anomaly1");
        std::path::PathBuf::from(s)
    };

    let telemetry = TelemetryConfig::new()
        .with_flight(FlightConfig {
            capacity: 8192,
            dump_path: Some(dump_path.clone()),
            max_anomaly_dumps: 4,
        })
        .with_watchdogs(vec![WatchdogSpec::ThermalViolation { red_line_c: 28.0 }]);
    let summary_handle = telemetry.summary.clone();
    Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace_cfg),
        policy.build(&cluster),
    )
    .with_telemetry(telemetry)
    .run();

    let summary = summary_handle.get().expect("summary deposited");
    assert!(summary.anomalies > 0, "no watchdog fired below red-line");

    // The anomaly dump validates and names the watchdog that fired.
    let text = std::fs::read_to_string(&anomaly_path).expect("anomaly dump written");
    let dump = validate_dump(&text).expect("anomaly dump validates");
    assert_eq!(dump.header.watchdog, Some(WatchdogKind::ThermalViolation));
    assert!(dump.records > 0, "anomaly dump holds no context records");
    assert!(
        dump.header.tick >= 1,
        "anomaly dump carries its firing tick"
    );

    // The end-of-run on-demand dump also validates, spans the run up to
    // its final tick, and is marked on-demand (no watchdog).
    let text = std::fs::read_to_string(&dump_path).expect("end-of-run dump written");
    let dump = validate_dump(&text).expect("end-of-run dump validates");
    assert_eq!(dump.header.watchdog, None);
    assert!(dump.records > 0);

    let _ = std::fs::remove_file(&dump_path);
    let _ = std::fs::remove_file(&anomaly_path);
}
