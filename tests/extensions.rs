//! Integration tests for the beyond-the-paper extensions: recorded-trace
//! replay, rack power balance, time-of-use pricing, the adaptive GV
//! controller, and the discretized wax pack inside a server-scale flow.

use vmt::core::{AdaptiveGv, GroupingValue, PolicyKind, VmtConfig};
use vmt::dcsim::{ClusterConfig, PlacementMap, RackLayout, Simulation};
use vmt::tco::TimeOfUseTariff;
use vmt::units::{Hours, Minutes, Seconds};
use vmt::workload::{DiurnalTrace, RecordedTrace, TraceConfig};

/// A snapshot of the synthetic trace, replayed through the simulator,
/// produces nearly the same cooling behavior as the generator itself.
#[test]
fn recorded_trace_replay_matches_synthetic() {
    let synthetic = DiurnalTrace::new(TraceConfig::paper_default());
    let recorded = RecordedTrace::sample_from(&synthetic, Minutes::new(1.0));

    let cluster = ClusterConfig::paper_default(30);
    let a = Simulation::new(
        cluster.clone(),
        synthetic,
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run();
    let b = Simulation::new(
        cluster.clone(),
        recorded,
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run();

    let peak_a = a.peak_cooling().get();
    let peak_b = b.peak_cooling().get();
    assert!(
        (peak_a - peak_b).abs() / peak_a < 0.01,
        "replay peak {peak_b:.0} vs synthetic {peak_a:.0}"
    );
    let melt_a = a.max_stored_energy().to_megajoules();
    let melt_b = b.max_stored_energy().to_megajoules();
    assert!(
        (melt_a - melt_b).abs() < 0.1 * melt_a.max(1.0),
        "replay stored {melt_b:.1} vs synthetic {melt_a:.1}"
    );
}

/// A recorded trace round-trips through CSV and still drives the
/// simulator to the same outcome.
#[test]
fn recorded_trace_csv_round_trip_drives_simulation() {
    let synthetic = DiurnalTrace::new(TraceConfig::paper_default());
    let recorded = RecordedTrace::sample_from(&synthetic, Minutes::new(5.0));
    let reparsed = RecordedTrace::from_csv_str(&recorded.to_csv()).expect("csv round trip");

    let cluster = ClusterConfig::paper_default(10);
    let a = Simulation::new(
        cluster.clone(),
        recorded,
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();
    let b = Simulation::new(
        cluster.clone(),
        reparsed,
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();
    let pa = a.electrical.peak().get();
    let pb = b.electrical.peak().get();
    assert!((pa - pb).abs() / pa < 0.005, "{pa} vs {pb}");
}

/// VMT's id-ordered hot group, placed contiguously, overloads some rack
/// feeds; the paper's recommended striping keeps every rack near the
/// mean. Checked on the loaded server state at the hour-20 peak.
#[test]
fn striping_balances_rack_power_under_vmt() {
    let cluster = ClusterConfig::paper_default(60);
    let mut trace = TraceConfig::paper_default();
    trace.horizon = Hours::new(20.0); // stop right at the peak
    let (_, servers) = Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace),
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run_returning_servers();

    let layout = RackLayout::paper_default(60);
    let contiguous = layout.power_stats(&servers, PlacementMap::Contiguous);
    let striped = layout.power_stats(&servers, PlacementMap::Striped);
    assert!(
        contiguous.imbalance() > 3.0 * striped.imbalance(),
        "contiguous {:.3} vs striped {:.3}",
        contiguous.imbalance(),
        striped.imbalance()
    );
    assert!(
        striped.imbalance() < 0.05,
        "striped {:.3}",
        striped.imbalance()
    );
}

/// Shifting the cooling peak into off-peak hours saves opex under a
/// time-of-use tariff: VMT's cooling energy costs less than round
/// robin's even though the total heat is (slightly) higher at night.
#[test]
fn vmt_cooling_energy_is_cheaper_under_time_of_use() {
    let cluster = ClusterConfig::paper_default(50);
    let trace = DiurnalTrace::new(TraceConfig::paper_default());
    let rr = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();
    let ta = Simulation::new(
        cluster.clone(),
        trace,
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run();
    let tariff = TimeOfUseTariff::us_commercial_default();
    let rr_series: Vec<f64> = rr.cooling.samples().iter().map(|w| w.get()).collect();
    let ta_series: Vec<f64> = ta.cooling.samples().iter().map(|w| w.get()).collect();
    let delta = tariff.cost_delta(&ta_series, &rr_series, Seconds::new(60.0), 0.3);
    assert!(
        delta.get() < 0.0,
        "VMT should shift cooling energy off-peak and save: {delta}"
    );
}

/// Free-cooling ambient drift: with the inlet tracking the outdoor day
/// (warmest mid-afternoon), VMT still melts wax at the evening peak and
/// delivers most of its reduction.
#[test]
fn vmt_survives_diurnal_ambient_drift() {
    let mut cluster = ClusterConfig::paper_default(50);
    cluster.inlet = vmt::thermal::InletModel::diurnal_ambient(
        vmt::units::Celsius::new(21.0),
        vmt::units::DegC::new(1.5),
        16.0,
    );
    let trace = DiurnalTrace::new(TraceConfig::paper_default());
    let baseline = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();
    let vmt_run = Simulation::new(
        cluster.clone(),
        trace,
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run();
    let reduction = vmt_run.compare_peak(&baseline).reduction_percent();
    assert!(
        reduction > 7.0,
        "VMT should keep most of its benefit under ambient drift: {reduction:.1}%"
    );
    assert!(vmt_run.max_melt_fraction() > 0.9);
    // The drift itself is visible: the baseline's average temperature at
    // the 16:00 ambient peak exceeds the same load hour at dawn-side
    // inlets.
    let dawn = baseline.avg_temp[(9.5 * 60.0) as usize];
    let afternoon = baseline.avg_temp[16 * 60];
    assert!(afternoon > dawn, "{afternoon} vs {dawn}");
}

/// The adaptive controller run end-to-end through the simulator: over a
/// four-day trace it must match the fixed optimal GV within a point.
#[test]
fn adaptive_gv_converges_end_to_end() {
    let cluster = ClusterConfig::paper_default(50);
    let mut trace_cfg = TraceConfig::paper_default();
    trace_cfg.horizon = Hours::new(96.0);
    trace_cfg.day_scale = vec![1.0, 0.99, 1.0, 0.99];
    let trace = DiurnalTrace::new(trace_cfg);

    let baseline = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();
    let fixed = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::vmt_wa(22.0).build(&cluster),
    )
    .run();
    let adaptive = Simulation::new(
        cluster.clone(),
        trace,
        Box::new(AdaptiveGv::new(
            VmtConfig::new(GroupingValue::new(22.0), &cluster),
            (16.0, 30.0),
        )),
    )
    .run();

    let fixed_red = fixed.compare_peak(&baseline).reduction_percent();
    let adaptive_red = adaptive.compare_peak(&baseline).reduction_percent();
    assert!(
        (fixed_red - adaptive_red).abs() < 1.0,
        "adaptive {adaptive_red:.1}% vs fixed-optimal {fixed_red:.1}%"
    );
}
