//! Differential regression tests: the optimized schedulers (heap
//! balancer + `ClusterIndex` fast paths + scan cursors) must be
//! *observationally identical* to the retained naive-scan references in
//! `vmt_core::reference`.
//!
//! Each case runs the full simulation twice — once per implementation —
//! over a 100-server, one-day diurnal trace and asserts the entire
//! [`SimulationResult`]s are equal: every cooling/electrical sample,
//! every temperature, every heatmap cell, every placement and drop
//! count. Any divergence in placement order, key arithmetic, or index
//! bookkeeping shows up as a failed equality, so the fast paths cannot
//! silently drift from the specification.

use vmt_core::{
    CoolestFirst, GroupingValue, NaiveCoolestFirst, NaiveVmtTa, NaiveVmtWa, PolicyKind, VmtConfig,
    VmtTa, VmtWa,
};
use vmt_dcsim::{
    digest_index, ClusterConfig, ClusterIndex, Scheduler, ServerFarm, Simulation, SimulationResult,
};
use vmt_units::{Hours, Seconds};
use vmt_workload::{DiurnalTrace, Job, JobId, TraceConfig, WorkloadKind};

const SERVERS: usize = 100;
const SEEDS: [u64; 3] = [0, 1, 42];

fn one_day_config(seed: u64) -> (ClusterConfig, TraceConfig) {
    let mut cluster = ClusterConfig::paper_default(SERVERS);
    cluster.seed = seed;
    let mut trace = TraceConfig {
        horizon: Hours::new(24.0),
        ..TraceConfig::paper_default()
    };
    trace.seed = trace.seed.wrapping_add(seed);
    (cluster, trace)
}

fn run(seed: u64, scheduler: Box<dyn Scheduler>) -> SimulationResult {
    let (cluster, trace) = one_day_config(seed);
    Simulation::new(cluster, DiurnalTrace::new(trace), scheduler).run()
}

fn run_with_threads(seed: u64, scheduler: Box<dyn Scheduler>, threads: usize) -> SimulationResult {
    let (cluster, trace) = one_day_config(seed);
    Simulation::new(cluster, DiurnalTrace::new(trace), scheduler)
        .with_threads(threads)
        .run()
}

/// Asserts two runs are bit-identical, with a targeted message per field
/// so a regression points at the diverging series instead of dumping two
/// multi-megabyte structs.
fn assert_identical(fast: &SimulationResult, naive: &SimulationResult, label: &str) {
    assert_eq!(fast.scheduler_name, naive.scheduler_name, "{label}: name");
    assert_eq!(fast.placements, naive.placements, "{label}: placements");
    assert_eq!(fast.dropped_jobs, naive.dropped_jobs, "{label}: drops");
    assert_eq!(fast.cooling, naive.cooling, "{label}: cooling series");
    assert_eq!(fast.electrical, naive.electrical, "{label}: electrical");
    assert_eq!(fast.avg_temp, naive.avg_temp, "{label}: avg_temp");
    assert_eq!(
        fast.hot_group_temp, naive.hot_group_temp,
        "{label}: hot_group_temp"
    );
    assert_eq!(
        fast.hot_group_sizes, naive.hot_group_sizes,
        "{label}: hot_group_sizes"
    );
    assert_eq!(
        fast.stored_energy, naive.stored_energy,
        "{label}: stored_energy"
    );
    assert_eq!(fast.temp_heatmap, naive.temp_heatmap, "{label}: temp map");
    assert_eq!(fast.melt_heatmap, naive.melt_heatmap, "{label}: melt map");
    // Belt and braces: whole-struct equality catches any field added
    // later without a targeted assert above.
    assert_eq!(fast, naive, "{label}: full result");
}

fn vmt_config(seed: u64) -> VmtConfig {
    let (cluster, _) = one_day_config(seed);
    VmtConfig::new(GroupingValue::new(22.0), &cluster)
}

#[test]
fn coolest_first_matches_naive_reference() {
    for seed in SEEDS {
        let fast = run(seed, Box::new(CoolestFirst::new()));
        let naive = run(seed, Box::new(NaiveCoolestFirst::new()));
        assert_identical(&fast, &naive, &format!("coolest-first seed {seed}"));
    }
}

#[test]
fn vmt_ta_matches_naive_reference() {
    for seed in SEEDS {
        let fast = run(seed, Box::new(VmtTa::new(vmt_config(seed))));
        let naive = run(seed, Box::new(NaiveVmtTa::new(vmt_config(seed))));
        assert_identical(&fast, &naive, &format!("vmt-ta seed {seed}"));
    }
}

#[test]
fn vmt_wa_matches_naive_reference() {
    for seed in SEEDS {
        let fast = run(seed, Box::new(VmtWa::new(vmt_config(seed))));
        let naive = run(seed, Box::new(NaiveVmtWa::new(vmt_config(seed))));
        assert_identical(&fast, &naive, &format!("vmt-wa seed {seed}"));
    }
}

/// Determinism across the parallel physics tick: the sharded sweep folds
/// per-shard partials in shard order, so every thread count must
/// reproduce the single-threaded run bit for bit — same cooling samples,
/// same placement stream, same heatmaps.
#[test]
fn results_are_bit_identical_at_any_thread_count() {
    for seed in SEEDS {
        let baseline = run_with_threads(seed, Box::new(VmtWa::new(vmt_config(seed))), 1);
        for threads in [2, 4, 8] {
            let parallel = run_with_threads(seed, Box::new(VmtWa::new(vmt_config(seed))), threads);
            assert_identical(
                &parallel,
                &baseline,
                &format!("vmt-wa seed {seed} threads {threads}"),
            );
        }
    }
}

/// Batched placement (`Scheduler::place_batch`, the engine's hot path
/// since the tick pool PR) must be *decision-for-decision* identical to
/// the per-job sequence it replaced: `place_indexed`, then
/// `start_job`/index refresh, before the next decision. Property-tested
/// over cluster sizes, seeds, and arbitrary arrival mixes for all four
/// paper policies.
mod batched_placement {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The four policies of the paper's evaluation.
    fn policies() -> [PolicyKind; 4] {
        [
            PolicyKind::RoundRobin,
            PolicyKind::CoolestFirst,
            PolicyKind::VmtTa { gv: 22.0 },
            PolicyKind::vmt_wa(22.0),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn place_batch_equals_per_job_sequential(
            servers in 1usize..48,
            seed_pick in 0usize..3,
            batch_len in 0usize..160,
            job_seed in 0u64..u64::MAX,
        ) {
            let mut cluster = ClusterConfig::paper_default(servers);
            cluster.seed = [0u64, 1, 42][seed_pick];
            // The vendored proptest only draws primitives, so the batch
            // is derived from a drawn seed instead of a vec strategy.
            let mut job_rng = SmallRng::seed_from_u64(job_seed);
            let jobs: Vec<Job> = (0..batch_len)
                .map(|i| {
                    let kind = WorkloadKind::ALL[job_rng.gen_range(0..WorkloadKind::ALL.len())];
                    let duration = job_rng.gen_range(120.0..7200.0);
                    Job::new(JobId(i as u64), kind, Seconds::new(duration))
                })
                .collect();

            for policy in policies() {
                // Batched path: the single call the engine makes per tick.
                let mut farm_a = ServerFarm::from_config(&cluster);
                let mut index_a = ClusterIndex::new(&farm_a);
                let mut sched_a = policy.build(&cluster);
                sched_a.on_tick_indexed(&farm_a, &index_a, Seconds::new(0.0));
                let mut outcomes_a = Vec::new();
                sched_a.place_batch(&jobs, &mut farm_a, &mut index_a, &mut outcomes_a);
                prop_assert_eq!(outcomes_a.len(), jobs.len());

                // Sequential path: one decision at a time, with the farm
                // and index refreshed between decisions exactly as the
                // pre-batching engine did.
                let mut farm_b = ServerFarm::from_config(&cluster);
                let mut index_b = ClusterIndex::new(&farm_b);
                let mut sched_b = policy.build(&cluster);
                sched_b.on_tick_indexed(&farm_b, &index_b, Seconds::new(0.0));
                let mut outcomes_b = Vec::new();
                for job in &jobs {
                    let placed = sched_b.place_indexed(job, &farm_b, &index_b);
                    if let Some(sid) = placed {
                        farm_b.start_job(sid.0, job);
                        // A from-scratch rebuild equals the engine's
                        // incremental `record_start` bookkeeping.
                        index_b = ClusterIndex::new(&farm_b);
                    }
                    outcomes_b.push(placed);
                }

                // (message-less asserts: the vendored proptest macros
                // take exactly two arguments)
                prop_assert_eq!(&outcomes_a, &outcomes_b);
                prop_assert_eq!(digest_index(&index_a), digest_index(&index_b));
                for i in 0..servers {
                    prop_assert_eq!(farm_a.free_cores(i), farm_b.free_cores(i));
                    prop_assert_eq!(farm_a.power(i), farm_b.power(i));
                }
            }
        }
    }
}
