//! Restore-equivalence suite for the snapshot/fork/restore machinery.
//!
//! The contract under test: a simulation checkpointed at tick T and
//! restored — through the full container format, not just in memory —
//! must be **bit-identical** to the uninterrupted run from tick T on.
//! Every per-tick state digest of the restored run, its final
//! `SimulationResult`, and the final farm digest must equal the
//! continuous run's, at any physics thread count. `fork()` carries the
//! same contract without serialization.

use vmt::core::{restore_simulation, PolicyKind};
use vmt::dcsim::{digest_final_state, ClusterConfig, Simulation, SimulationResult, Snapshot};
use vmt::units::Hours;
use vmt::workload::{DiurnalTrace, TraceConfig};

const SERVERS: usize = 16;
const HOURS: f64 = 48.0;

/// A paper-default simulation at a seed/policy/thread-count triple.
fn build(seed: u64, policy: PolicyKind, threads: usize) -> Simulation {
    build_sized(seed, policy, threads, SERVERS, HOURS)
}

fn build_sized(
    seed: u64,
    policy: PolicyKind,
    threads: usize,
    servers: usize,
    hours: f64,
) -> Simulation {
    let mut cluster = ClusterConfig::paper_default(servers);
    cluster.seed = seed;
    let mut trace = TraceConfig::paper_default();
    trace.horizon = Hours::new(hours);
    trace.seed = seed;
    Simulation::new(
        cluster.clone(),
        DiurnalTrace::new(trace),
        policy.build(&cluster),
    )
    .with_threads(threads)
}

/// The four policies the suite sweeps (round robin and the adaptive
/// controller are covered by the quicker single-seed test below).
fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::CoolestFirst,
        PolicyKind::VmtTa { gv: 22.0 },
        PolicyKind::vmt_wa(22.0),
        PolicyKind::Preserve {
            gv: 22.0,
            engage_hour: 16.0,
        },
    ]
}

/// Runs a simulation to its horizon, recording the state digest after
/// every tick, and returns the digests, the result, and the final farm
/// digest. `digests[k]` is the state after `k + 1` executed ticks.
fn run_with_digests(mut sim: Simulation) -> (Vec<u64>, SimulationResult, u64) {
    let mut digests = Vec::new();
    while sim.step() {
        digests.push(sim.state_digest());
    }
    let (result, servers) = sim.finish();
    let final_digest = digest_final_state(&result, &servers);
    (digests, result, final_digest)
}

/// Steps `sim` to its horizon asserting every tick digest against the
/// continuous run's, then asserts the finished result and farm digest.
fn assert_suffix_identical(
    mut sim: Simulation,
    from: usize,
    digests: &[u64],
    result: &SimulationResult,
    final_digest: u64,
    context: &str,
) {
    let mut t = from;
    while sim.step() {
        assert_eq!(
            sim.state_digest(),
            digests[t],
            "{context}: diverged at tick {}",
            t + 1
        );
        t += 1;
    }
    assert_eq!(t, digests.len(), "{context}: tick count");
    let (restored_result, end_servers) = sim.finish();
    assert_eq!(&restored_result, result, "{context}: final result");
    assert_eq!(
        digest_final_state(&restored_result, &end_servers),
        final_digest,
        "{context}: final farm digest"
    );
}

/// The tentpole property: snapshot at the midpoint, round-trip through
/// the on-disk container, restore at thread counts 1 and 8, and hold
/// every subsequent tick bit-identical to the uninterrupted run —
/// across seeds and all four swept policies.
#[test]
fn restored_runs_are_bit_identical_to_continuous() {
    for seed in [0u64, 1, 42] {
        for policy in policies() {
            let (digests, result, final_digest) = run_with_digests(build(seed, policy, 1));
            let ticks = digests.len();
            let mid = (ticks / 2) as u64;

            let mut sim = build(seed, policy, 1);
            sim.run_until(mid);
            let snapshot = sim.snapshot().expect("paper policies snapshot");
            let decoded = Snapshot::decode(&snapshot.encode()).expect("container round-trips");
            assert_eq!(decoded.digest(), snapshot.digest());
            assert_eq!(decoded.tick, mid);

            for threads in [1usize, 8] {
                let context = format!("seed {seed}, {policy:?}, threads {threads}");
                let restored = restore_simulation(&decoded)
                    .unwrap_or_else(|e| panic!("{context}: restore failed: {e}"))
                    .with_threads(threads);
                assert_eq!(restored.current_tick(), mid, "{context}: resume tick");
                assert_eq!(
                    restored.state_digest(),
                    digests[mid as usize - 1],
                    "{context}: state at restore"
                );
                assert_suffix_identical(
                    restored,
                    mid as usize,
                    &digests,
                    &result,
                    final_digest,
                    &context,
                );
            }
        }
    }
}

/// Every checkpointable policy kind — including round robin and the
/// stateful adaptive controller — restores bit-identically (single seed
/// and thread count; the sweep above covers the matrix).
#[test]
fn every_policy_kind_restores_bit_identically() {
    for policy in [
        PolicyKind::RoundRobin,
        PolicyKind::AdaptiveGv { start_gv: 22.0 },
    ] {
        let (digests, result, final_digest) = run_with_digests(build_sized(7, policy, 1, 8, 30.0));
        let mid = (digests.len() / 2) as u64;
        let mut sim = build_sized(7, policy, 1, 8, 30.0);
        sim.run_until(mid);
        let snapshot = sim.snapshot().expect("policy snapshots");
        let restored = restore_simulation(&Snapshot::decode(&snapshot.encode()).unwrap()).unwrap();
        assert_suffix_identical(
            restored,
            mid as usize,
            &digests,
            &result,
            final_digest,
            &format!("{policy:?}"),
        );
    }
}

/// `fork()` is restore without serialization: the fork and the original
/// continue independently, both bit-identical to the continuous run.
#[test]
fn forked_runs_match_their_original() {
    let policy = PolicyKind::vmt_wa(22.0);
    let (digests, result, final_digest) = run_with_digests(build(42, policy, 1));
    let mid = digests.len() / 2;

    let mut sim = build(42, policy, 1);
    sim.run_until(mid as u64);
    let fork = sim.fork().expect("paper policies fork");
    assert_eq!(fork.state_digest(), sim.state_digest());

    // The fork runs out first; the original must be undisturbed by it.
    assert_suffix_identical(fork, mid, &digests, &result, final_digest, "fork");
    assert_suffix_identical(sim, mid, &digests, &result, final_digest, "original");
}

/// Boundary checkpoints: tick zero (nothing run) reproduces the whole
/// run; the horizon edge (everything run) yields the finished result.
#[test]
fn edge_snapshots_restore() {
    let policy = PolicyKind::VmtTa { gv: 22.0 };
    let (digests, result, final_digest) = run_with_digests(build(0, policy, 1));

    let sim = build(0, policy, 1);
    let snapshot = sim.snapshot().expect("tick-0 snapshot");
    assert_eq!(snapshot.tick, 0);
    let restored = restore_simulation(&Snapshot::decode(&snapshot.encode()).unwrap()).unwrap();
    let (replayed, replayed_result, replayed_final) = run_with_digests(restored);
    assert_eq!(replayed, digests);
    assert_eq!(replayed_result, result);
    assert_eq!(replayed_final, final_digest);

    let mut sim = build(0, policy, 1);
    let total = sim.total_ticks();
    sim.run_until(total);
    let snapshot = sim.snapshot().expect("horizon snapshot");
    assert_eq!(snapshot.tick, total);
    let mut restored = restore_simulation(&Snapshot::decode(&snapshot.encode()).unwrap()).unwrap();
    assert!(!restored.step(), "nothing left past the horizon");
    let (end_result, end_servers) = restored.finish();
    assert_eq!(end_result, result);
    assert_eq!(digest_final_state(&end_result, &end_servers), final_digest);
}

/// Format-stability regression: a container committed to the repository
/// (written by `vmt-experiments snapshot tests/data/golden_v1.snap
/// --at 30 --servers 4 --hours 2 --policy vmt-wa --seed 7`) must keep
/// decoding, hashing, and resuming to the digests pinned here. A
/// payload-layout or physics change that breaks old snapshots fails
/// this test instead of surfacing in a user's archive.
#[test]
fn golden_snapshot_stays_readable() {
    const GOLDEN: &str = include_str!("data/golden_v1.snap");
    // `Snapshot::digest()` hashes the *re-serialized* payload, so this
    // pin moves when the payload schema gains fields even though the old
    // container keeps decoding. History: originally
    // 0xf045_b343_96c5_75fe; re-pinned when the backward-compatible
    // `config.topology` / `zone_temps` options were added (both decode
    // as `None` from this fixture). RESUMED_DIGEST pins the physics and
    // must never move.
    const GOLDEN_DIGEST: u64 = 0xe572_eef5_8785_5053;
    const RESUMED_DIGEST: u64 = 0x6a35_e733_f5ae_af38;

    let snapshot = Snapshot::decode(GOLDEN).expect("golden fixture decodes");
    assert_eq!(snapshot.tick, 30);
    assert_eq!(snapshot.scheduler.kind, "vmt-wa");
    assert_eq!(snapshot.digest(), GOLDEN_DIGEST);

    let mut sim = restore_simulation(&snapshot).expect("golden fixture restores");
    sim.run_until(60);
    assert_eq!(
        sim.state_digest(),
        RESUMED_DIGEST,
        "resuming the golden snapshot no longer reproduces the pinned state"
    );
}

/// Property tests over the container format: lossless round-trips at
/// arbitrary ticks, and graceful rejection (typed errors, never a
/// panic) of arbitrarily mutilated containers.
mod container_properties {
    use super::*;
    use proptest::prelude::*;

    /// A small deterministic snapshot to mutate.
    fn sample_container(seed: u64, at: u64) -> String {
        let mut sim = build_sized(seed, PolicyKind::vmt_wa(22.0), 1, 2, 1.0);
        sim.run_until(at.min(sim.total_ticks()));
        sim.snapshot().expect("sample snapshots").encode()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn snapshots_round_trip_at_any_tick(
            servers in 1usize..12,
            seed in 0u64..1000,
            percent in 0u64..=100,
        ) {
            let mut sim = build_sized(seed, PolicyKind::vmt_wa(22.0), 1, servers, 4.0);
            let at = sim.total_ticks() * percent / 100;
            sim.run_until(at);
            let snapshot = sim.snapshot().expect("snapshot");
            let decoded = Snapshot::decode(&snapshot.encode()).expect("decode");
            prop_assert_eq!(decoded.digest(), snapshot.digest());
            prop_assert_eq!(decoded.tick, at);
            // Re-encoding the decoded snapshot is byte-identical.
            prop_assert_eq!(decoded.encode(), snapshot.encode());
            // And it restores to the same live state.
            let restored = restore_simulation(&decoded).expect("restore");
            prop_assert_eq!(restored.state_digest(), sim.state_digest());
        }

        #[test]
        fn mutilated_containers_never_panic(
            flip_at in 0usize..4096,
            flip_to in 0u8..=255u8,
            truncate_to in 0usize..4096,
        ) {
            let encoded = sample_container(3, 10);

            // Truncation at any byte: an error, never a panic. The
            // container is ASCII (JSON with no non-ASCII strings), so
            // every byte offset is a char boundary.
            let cut = truncate_to.min(encoded.len());
            prop_assert!(encoded.is_char_boundary(cut));
            if cut < encoded.len() {
                prop_assert!(Snapshot::decode(&encoded[..cut]).is_err());
            }

            // A single corrupted byte: either rejected with a typed
            // error, or the flip was a no-op and the decode must agree
            // with the original.
            let mut bytes = encoded.clone().into_bytes();
            let i = flip_at % bytes.len();
            let unchanged = bytes[i] == flip_to;
            bytes[i] = flip_to;
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            // Typed rejection is the expected outcome; if the mutant
            // still decodes, the digest check makes silent corruption
            // of the payload impossible — an accepted container can
            // only differ from the original in the header's own
            // representation of unchanged facts.
            if let Ok(snapshot) = Snapshot::decode(&mutated) {
                let original = Snapshot::decode(&encoded).expect("original decodes");
                prop_assert!(unchanged || i < encoded.find('\n').unwrap_or(0));
                prop_assert_eq!(snapshot.digest(), original.digest());
            }
        }
    }
}

/// A zoned cluster (rack/row/zone topology with per-zone CRAC
/// integrators) restores bit-identically: the zone temperatures travel
/// in the container, the restored integrators pick up exactly where
/// the continuous run's were, and every subsequent tick digest matches
/// at any thread count. The spec's CRAC capacity is set low enough
/// that zones genuinely warm above the setpoint, so the round trip is
/// exercised on non-trivial integrator state.
#[test]
fn zoned_run_restores_bit_identically() {
    use vmt::dcsim::ZoneSpec;

    let spec = ZoneSpec {
        servers_per_rack: 4,
        racks_per_row: 2,
        rows_per_zone: 2,
        crac_capacity_w_per_server: 120.0,
        crac_setpoint_c: 22.0,
        crac_capacitance_j_per_k_per_server: 5_000.0,
    };
    let seed = 7u64;
    let servers = 100; // 7 zones: 6 full (16 servers) plus a 4-server tail
    let policy = PolicyKind::vmt_wa(22.0);

    let build_zoned = |threads: usize| {
        let mut cluster = ClusterConfig::paper_default(servers);
        cluster.seed = seed;
        cluster.topology = Some(spec);
        let mut trace = TraceConfig::paper_default();
        trace.horizon = Hours::new(24.0);
        trace.seed = seed;
        Simulation::new(
            cluster.clone(),
            DiurnalTrace::new(trace),
            policy.build(&cluster),
        )
        .with_threads(threads)
    };

    let (digests, result, final_digest) = run_with_digests(build_zoned(1));
    let mid = (digests.len() / 2) as u64;

    let mut sim = build_zoned(1);
    sim.run_until(mid);
    let continuous_zone_temps: Vec<f64> = sim
        .zones()
        .expect("topology configured")
        .temperatures()
        .to_vec();
    assert!(
        continuous_zone_temps
            .iter()
            .any(|&t| t > spec.crac_setpoint_c),
        "test misconfigured: no zone ever warmed above the setpoint, \
         so the round trip would only cover trivial integrator state"
    );
    let snapshot = sim.snapshot().expect("zoned runs snapshot");
    assert_eq!(
        snapshot.zone_temps.as_deref(),
        Some(continuous_zone_temps.as_slice()),
        "zone temperatures travel in the snapshot"
    );
    let decoded = Snapshot::decode(&snapshot.encode()).expect("container round-trips");

    for threads in [1usize, 4] {
        let context = format!("zoned restore at {threads} threads");
        let restored = restore_simulation(&decoded)
            .unwrap_or_else(|e| panic!("{context}: restore failed: {e}"))
            .with_threads(threads);
        assert_eq!(
            restored
                .zones()
                .expect("restored run keeps its topology")
                .temperatures(),
            continuous_zone_temps.as_slice(),
            "{context}: integrator state at restore"
        );
        assert_suffix_identical(
            restored,
            mid as usize,
            &digests,
            &result,
            final_digest,
            &context,
        );
    }
}
