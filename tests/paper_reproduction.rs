//! End-to-end reproduction checks: the paper's headline qualitative
//! results, asserted on full two-day cluster simulations.
//!
//! These tests run the same experiment drivers as the `vmt-experiments`
//! CLI, at the paper's 100-server sweep size, and assert the *shape* of
//! each result (who wins, by roughly what factor, where crossovers
//! fall). `EXPERIMENTS.md` records the exact numbers.

use vmt::core::PolicyKind;
use vmt::dcsim::{ClusterConfig, Simulation};
use vmt::experiments::runner::{execute_all, Run};
use vmt::workload::{DiurnalTrace, TraceConfig};

const SERVERS: usize = 100;

fn run(policy: PolicyKind) -> vmt::dcsim::SimulationResult {
    Run::new(SERVERS, policy).execute()
}

/// §V headline: VMT reduces the peak cooling load by ≈12.8% at GV=22
/// while round robin and coolest first achieve ≈0%.
#[test]
fn headline_peak_cooling_reduction() {
    let results = execute_all(&[
        Run::new(SERVERS, PolicyKind::RoundRobin),
        Run::new(SERVERS, PolicyKind::CoolestFirst),
        Run::new(SERVERS, PolicyKind::VmtTa { gv: 22.0 }),
        Run::new(SERVERS, PolicyKind::vmt_wa(22.0)),
    ]);
    let rr = &results[0];
    let cf = results[1].compare_peak(rr).reduction_percent();
    let ta = results[2].compare_peak(rr).reduction_percent();
    let wa = results[3].compare_peak(rr).reduction_percent();
    assert!(cf.abs() < 1.0, "coolest first should be ≈0%, got {cf:.1}%");
    assert!(
        (11.0..=14.0).contains(&ta),
        "VMT-TA at GV=22 should be ≈12.8%, got {ta:.1}%"
    );
    assert!(
        (wa - ta).abs() < 1.0,
        "VMT-WA should match VMT-TA at the optimum: {wa:.1}% vs {ta:.1}%"
    );
}

/// Figures 9/10: neither baseline melts significant wax, and coolest
/// first holds a tighter temperature distribution than round robin.
#[test]
fn baselines_do_not_melt_wax() {
    let results = execute_all(&[
        Run::new(SERVERS, PolicyKind::RoundRobin),
        Run::new(SERVERS, PolicyKind::CoolestFirst),
    ]);
    for r in &results {
        let melted_share = r.max_stored_energy().get() / (SERVERS as f64 * 786_480.0); // per-server latent capacity
        assert!(
            melted_share < 0.05,
            "{} stored {:.1}% of cluster capacity",
            r.scheduler_name,
            melted_share * 100.0
        );
    }
    // Temperature spread: coolest first < round robin at every sampled
    // tick's widest point.
    let spread = |r: &vmt::dcsim::SimulationResult| {
        r.temp_heatmap
            .rows
            .iter()
            .map(|row| {
                row.iter().cloned().fold(f64::MIN, f64::max)
                    - row.iter().cloned().fold(f64::MAX, f64::min)
            })
            .fold(0.0, f64::max)
    };
    assert!(spread(&results[1]) < spread(&results[0]));
}

/// Figure 11: VMT-TA melts wax in the hot group and only there.
#[test]
fn vmt_melts_only_the_hot_group() {
    let r = run(PolicyKind::VmtTa { gv: 22.0 });
    let hot = r.hot_group_sizes[0];
    let peak_row = r
        .melt_heatmap
        .rows
        .iter()
        .max_by(|a, b| {
            let (sa, sb) = (a.iter().sum::<f64>(), b.iter().sum::<f64>());
            sa.partial_cmp(&sb).expect("finite")
        })
        .expect("rows exist");
    let hot_melt = peak_row[..hot].iter().sum::<f64>() / hot as f64;
    let cold_melt = peak_row[hot..].iter().sum::<f64>() / (SERVERS - hot) as f64;
    assert!(hot_melt > 0.9, "hot group melt {hot_melt:.2}");
    assert!(cold_melt < 0.05, "cold group melt {cold_melt:.2}");
}

/// Figure 18's crossover structure: GV=22 is the optimum for both
/// algorithms; TA collapses below it while WA degrades gracefully; both
/// decline together above it.
#[test]
fn gv_sweep_shape() {
    let points = vmt::experiments::gv_sweep::gv_sweep(&[18.0, 20.0, 22.0, 26.0], SERVERS);
    let at = |gv: f64| points.iter().find(|p| p.gv == gv).expect("gv present");
    assert!(at(22.0).ta_percent > at(20.0).ta_percent * 3.0);
    assert!(at(22.0).ta_percent > at(26.0).ta_percent);
    assert!(at(20.0).wa_percent > at(20.0).ta_percent);
    assert!(at(18.0).wa_percent > at(18.0).ta_percent);
    assert!((at(26.0).wa_percent - at(26.0).ta_percent).abs() < 1.0);
}

/// The simulation is bitwise deterministic for a fixed seed and differs
/// when the seed changes.
#[test]
fn determinism_and_seed_sensitivity() {
    let a = run(PolicyKind::VmtTa { gv: 22.0 });
    let b = run(PolicyKind::VmtTa { gv: 22.0 });
    assert_eq!(a.cooling, b.cooling);
    assert_eq!(a.placements, b.placements);

    let cluster = {
        let mut c = ClusterConfig::paper_default(SERVERS);
        c.seed ^= 1;
        c
    };
    let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
    let c = Simulation::new(
        cluster,
        DiurnalTrace::new(TraceConfig::paper_default()),
        sched,
    )
    .run();
    assert_ne!(a.cooling, c.cooling, "different seed should change the run");
}

/// No jobs are dropped at the paper's load levels under any policy —
/// the paper's schedulers "only fail … where a thermally unconstrained
/// datacenter would also run out of computational space".
#[test]
fn no_drops_under_any_policy() {
    let results = execute_all(&[
        Run::new(SERVERS, PolicyKind::RoundRobin),
        Run::new(SERVERS, PolicyKind::CoolestFirst),
        Run::new(SERVERS, PolicyKind::VmtTa { gv: 22.0 }),
        Run::new(SERVERS, PolicyKind::vmt_wa(20.0)),
    ]);
    for r in &results {
        assert_eq!(r.dropped_jobs, 0, "{} dropped jobs", r.scheduler_name);
        assert!(r.placements > 100_000, "{} placements", r.scheduler_name);
    }
}

/// Energy sanity across the whole run: heat rejected = electrical energy
/// − net change in stored wax energy (first law, cluster level).
#[test]
fn energy_conservation_over_the_run() {
    let r = run(PolicyKind::VmtTa { gv: 22.0 });
    let rejected = r.cooling.total_heat().get();
    let electrical = r.electrical.total_heat().get();
    let net_stored = r.stored_energy.last().expect("non-empty").get()
        - r.stored_energy.first().expect("non-empty").get();
    // Latent accounting only (sensible wax heating is a second-order
    // term, bounded by ≈5% here).
    let imbalance = (electrical - rejected - net_stored).abs() / electrical;
    assert!(imbalance < 0.05, "energy imbalance {imbalance:.3}");
}

/// §V-E: the measured reduction converts into the paper's TCO headlines.
#[test]
fn tco_pipeline() {
    let (reduction, summary) = vmt::experiments::tco_summary::measured(SERVERS);
    assert!(reduction > 0.10, "measured reduction {reduction:.3}");
    let best = &summary.scenarios[0];
    assert!(
        best.cooling_savings.get() > 2.0e6,
        "{}",
        best.cooling_savings
    );
    assert!(best.additional_servers > 5_000);
    assert!(summary.n_paraffin_cost.get() / summary.commercial_wax_cost.get() > 70.0);
}
