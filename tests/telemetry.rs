//! Telemetry integration tests: instrumentation must be observational.
//!
//! The contract is two-sided. With telemetry disabled the engine takes
//! zero timestamps and allocates nothing extra — the differential tests
//! in `tests/differential.rs` pin that path. With telemetry *enabled*,
//! the simulation results must still be bit-identical to the
//! uninstrumented run at every thread count: the instrumentation reads
//! the simulation, never steers it. These tests pin the enabled side
//! and the JSONL stream contract.

use vmt_core::PolicyKind;
use vmt_dcsim::{ClusterConfig, Simulation, SimulationResult, TelemetryConfig, ZoneSpec};
use vmt_telemetry::{Event, MetricsPublisher, SharedBuffer, SummaryHandle};
use vmt_units::Hours;
use vmt_workload::{DiurnalTrace, TraceConfig};

const SERVERS: usize = 100;

fn config(seed: u64, hours: f64) -> (ClusterConfig, TraceConfig) {
    let mut cluster = ClusterConfig::paper_default(SERVERS);
    cluster.seed = seed;
    let mut trace = TraceConfig {
        horizon: Hours::new(hours),
        ..TraceConfig::paper_default()
    };
    trace.seed = trace.seed.wrapping_add(seed);
    (cluster, trace)
}

fn run_plain(policy: PolicyKind, seed: u64, threads: usize) -> SimulationResult {
    let (cluster, trace) = config(seed, 24.0);
    let scheduler = policy.build(&cluster);
    Simulation::new(cluster, DiurnalTrace::new(trace), scheduler)
        .with_threads(threads)
        .run()
}

fn run_instrumented(
    policy: PolicyKind,
    seed: u64,
    threads: usize,
    telemetry: TelemetryConfig,
) -> SimulationResult {
    let (cluster, trace) = config(seed, 24.0);
    let scheduler = policy.build(&cluster);
    Simulation::new(cluster, DiurnalTrace::new(trace), scheduler)
        .with_threads(threads)
        .with_telemetry(telemetry)
        .run()
}

/// Enabling telemetry — registry, phase timing, and a live event sink —
/// must not perturb the simulation by a single bit, at any thread count.
#[test]
fn telemetry_is_observationally_pure() {
    for policy in [
        PolicyKind::CoolestFirst,
        PolicyKind::VmtTa { gv: 22.0 },
        PolicyKind::vmt_wa(22.0),
    ] {
        for seed in [0u64, 42] {
            let baseline = run_plain(policy, seed, 1);
            for threads in [1usize, 4] {
                let buffer = SharedBuffer::new();
                let telemetry = TelemetryConfig::new()
                    .with_sink(vmt_telemetry::EventSink::to_shared_buffer(&buffer));
                let instrumented = run_instrumented(policy, seed, threads, telemetry);
                assert_eq!(
                    instrumented, baseline,
                    "telemetry perturbed {policy:?} seed {seed} threads {threads}"
                );
                assert!(
                    !buffer.contents().is_empty(),
                    "sink saw no events for {policy:?}"
                );
            }
        }
    }
}

/// The JSONL stream of an instrumented VMT-WA run is well-formed:
/// `RunConfig` first, `Summary` last, at least one snapshot per
/// simulated hour, and — at a grouping value that stresses the wax —
/// melt and hot-group events in between.
#[test]
fn instrumented_stream_is_well_formed() {
    let (cluster, trace) = config(0, 48.0);
    // GV=14 undersizes the hot group so the 48 h diurnal trace forces
    // both wax melt/freeze crossings and organic hot-group growth.
    let policy = PolicyKind::vmt_wa(14.0);
    let scheduler = policy.build(&cluster);
    let buffer = SharedBuffer::new();
    let telemetry =
        TelemetryConfig::new().with_sink(vmt_telemetry::EventSink::to_shared_buffer(&buffer));
    let ticks = cluster.ticks_for(Hours::new(48.0));
    let result = Simulation::new(cluster, DiurnalTrace::new(trace), scheduler)
        .with_telemetry(telemetry)
        .run();

    let text = buffer.contents();
    let stream = vmt_telemetry::validate_stream(&text).expect("stream validates");
    assert_eq!(stream.run_config.servers, SERVERS as u64);
    assert_eq!(stream.run_config.policy, "vmt-wa");
    assert_eq!(stream.run_config.ticks, ticks as u64);
    assert!(
        stream.snapshots >= 48,
        "expected one snapshot per simulated hour, got {}",
        stream.snapshots
    );
    assert!(stream.melts > 0, "no melt events over two diurnal peaks");
    assert!(
        stream.hot_group_events > 0,
        "no hot-group events despite an undersized group"
    );
    assert_eq!(stream.summary.ticks_run, ticks as u64);
    assert_eq!(stream.summary.placements, result.placements);
    assert_eq!(stream.summary.dropped_jobs, result.dropped_jobs);

    // Every line individually round-trips through the public Event type.
    for line in text.lines() {
        let event: Event = serde_json::from_str(line).expect("line parses");
        let rewritten = serde_json::to_string(&event).expect("event serializes");
        let reparsed: Event = serde_json::from_str(&rewritten).expect("round-trip parses");
        assert_eq!(event, reparsed);
    }
}

/// The full observability layer — time-series rings, per-zone thermal
/// gauges, the dashboard driver, and the scrape publisher — is as
/// observational as the event sink: a zoned run with everything enabled
/// matches the bare run digest-for-digest at every tick, and the final
/// result is bit-identical, at every thread count.
#[test]
fn zoned_observability_is_observationally_pure() {
    const ZONED_SERVERS: usize = 40;
    let hours = 6.0;
    let build = |threads: usize| {
        let mut cluster = ClusterConfig::paper_default(ZONED_SERVERS);
        cluster.seed = 7;
        // Two 20-server zones: one rack per row, one row per zone.
        let mut spec = ZoneSpec::paper_default();
        spec.racks_per_row = 1;
        spec.rows_per_zone = 1;
        cluster.topology = Some(spec);
        let mut trace = TraceConfig {
            horizon: Hours::new(hours),
            ..TraceConfig::paper_default()
        };
        trace.seed = trace.seed.wrapping_add(7);
        let policy = PolicyKind::vmt_wa(22.0);
        let scheduler = policy.build(&cluster);
        Simulation::new(cluster, DiurnalTrace::new(trace), scheduler).with_threads(threads)
    };

    for threads in [1usize, 8] {
        let mut bare = build(threads);
        let publisher = MetricsPublisher::new();
        let mut instrumented = build(threads).with_telemetry(
            TelemetryConfig::new()
                .with_series(128)
                .with_dashboard_every(60)
                .with_publisher(publisher.clone()),
        );

        // March both runs in lockstep and compare live state digests
        // after every tick — a divergence is caught at the tick that
        // caused it, not at the end of the horizon.
        let mut tick = 0u64;
        loop {
            let bare_stepped = bare.step();
            let instrumented_stepped = instrumented.step();
            assert_eq!(
                bare_stepped, instrumented_stepped,
                "horizon mismatch at tick {tick} threads {threads}"
            );
            if !bare_stepped {
                break;
            }
            tick += 1;
            assert_eq!(
                bare.state_digest(),
                instrumented.state_digest(),
                "observability perturbed tick {tick} threads {threads}"
            );
        }
        assert_eq!(tick, (hours * 60.0) as u64, "unexpected horizon length");

        let (bare_result, _) = bare.finish();
        let (instrumented_result, _) = instrumented.finish();
        assert_eq!(
            bare_result, instrumented_result,
            "observability perturbed the final result at threads {threads}"
        );

        // The publisher saw the closing exposition, and it carries the
        // per-zone thermal families the scrape endpoint serves.
        let publication = publisher.latest();
        assert_eq!(publication.tick, tick);
        let exposition =
            vmt_telemetry::parse_openmetrics(&publication.body).expect("publication parses");
        for family in ["zone_temp_c", "zone_crac_duty", "cluster_cooling_w"] {
            assert!(
                exposition.family(family).is_some(),
                "publication missing `{family}`"
            );
        }
    }
}

/// The end-of-run summary agrees with the `SimulationResult` and with
/// the scheduler's own counters, and the phase spans account for the
/// tick time they claim to measure.
#[test]
fn summary_agrees_with_result_and_counters() {
    let policy = PolicyKind::vmt_wa(22.0);
    let telemetry = TelemetryConfig::new();
    let summary: SummaryHandle = telemetry.summary.clone();
    let result = run_instrumented(policy, 0, 1, telemetry);
    let summary = summary.get().expect("summary deposited");

    assert_eq!(summary.policy, result.scheduler_name);
    assert_eq!(summary.placements, result.placements);
    assert_eq!(summary.dropped_jobs, result.dropped_jobs);
    assert_eq!(summary.peak_cooling_w, result.cooling.peak().get());
    let counters = summary.scheduler.expect("vmt-wa exposes counters");
    assert_eq!(counters.placements, result.placements);
    assert_eq!(
        counters.hot_placements + counters.cold_placements,
        counters.placements
    );
    assert!(
        summary.phases.coverage() > 0.9,
        "phase spans cover {:.1}% of tick time",
        summary.phases.coverage() * 100.0
    );
    let report = vmt_telemetry::render_report(&summary);
    assert!(report.contains("tick phases"));
    assert!(report.contains(&result.scheduler_name));
}
