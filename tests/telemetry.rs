//! Telemetry integration tests: instrumentation must be observational.
//!
//! The contract is two-sided. With telemetry disabled the engine takes
//! zero timestamps and allocates nothing extra — the differential tests
//! in `tests/differential.rs` pin that path. With telemetry *enabled*,
//! the simulation results must still be bit-identical to the
//! uninstrumented run at every thread count: the instrumentation reads
//! the simulation, never steers it. These tests pin the enabled side
//! and the JSONL stream contract.

use vmt_core::PolicyKind;
use vmt_dcsim::{ClusterConfig, Simulation, SimulationResult, TelemetryConfig};
use vmt_telemetry::{Event, SharedBuffer, SummaryHandle};
use vmt_units::Hours;
use vmt_workload::{DiurnalTrace, TraceConfig};

const SERVERS: usize = 100;

fn config(seed: u64, hours: f64) -> (ClusterConfig, TraceConfig) {
    let mut cluster = ClusterConfig::paper_default(SERVERS);
    cluster.seed = seed;
    let mut trace = TraceConfig {
        horizon: Hours::new(hours),
        ..TraceConfig::paper_default()
    };
    trace.seed = trace.seed.wrapping_add(seed);
    (cluster, trace)
}

fn run_plain(policy: PolicyKind, seed: u64, threads: usize) -> SimulationResult {
    let (cluster, trace) = config(seed, 24.0);
    let scheduler = policy.build(&cluster);
    Simulation::new(cluster, DiurnalTrace::new(trace), scheduler)
        .with_threads(threads)
        .run()
}

fn run_instrumented(
    policy: PolicyKind,
    seed: u64,
    threads: usize,
    telemetry: TelemetryConfig,
) -> SimulationResult {
    let (cluster, trace) = config(seed, 24.0);
    let scheduler = policy.build(&cluster);
    Simulation::new(cluster, DiurnalTrace::new(trace), scheduler)
        .with_threads(threads)
        .with_telemetry(telemetry)
        .run()
}

/// Enabling telemetry — registry, phase timing, and a live event sink —
/// must not perturb the simulation by a single bit, at any thread count.
#[test]
fn telemetry_is_observationally_pure() {
    for policy in [
        PolicyKind::CoolestFirst,
        PolicyKind::VmtTa { gv: 22.0 },
        PolicyKind::vmt_wa(22.0),
    ] {
        for seed in [0u64, 42] {
            let baseline = run_plain(policy, seed, 1);
            for threads in [1usize, 4] {
                let buffer = SharedBuffer::new();
                let telemetry = TelemetryConfig::new()
                    .with_sink(vmt_telemetry::EventSink::to_shared_buffer(&buffer));
                let instrumented = run_instrumented(policy, seed, threads, telemetry);
                assert_eq!(
                    instrumented, baseline,
                    "telemetry perturbed {policy:?} seed {seed} threads {threads}"
                );
                assert!(
                    !buffer.contents().is_empty(),
                    "sink saw no events for {policy:?}"
                );
            }
        }
    }
}

/// The JSONL stream of an instrumented VMT-WA run is well-formed:
/// `RunConfig` first, `Summary` last, at least one snapshot per
/// simulated hour, and — at a grouping value that stresses the wax —
/// melt and hot-group events in between.
#[test]
fn instrumented_stream_is_well_formed() {
    let (cluster, trace) = config(0, 48.0);
    // GV=14 undersizes the hot group so the 48 h diurnal trace forces
    // both wax melt/freeze crossings and organic hot-group growth.
    let policy = PolicyKind::vmt_wa(14.0);
    let scheduler = policy.build(&cluster);
    let buffer = SharedBuffer::new();
    let telemetry =
        TelemetryConfig::new().with_sink(vmt_telemetry::EventSink::to_shared_buffer(&buffer));
    let ticks = cluster.ticks_for(Hours::new(48.0));
    let result = Simulation::new(cluster, DiurnalTrace::new(trace), scheduler)
        .with_telemetry(telemetry)
        .run();

    let text = buffer.contents();
    let stream = vmt_telemetry::validate_stream(&text).expect("stream validates");
    assert_eq!(stream.run_config.servers, SERVERS as u64);
    assert_eq!(stream.run_config.policy, "vmt-wa");
    assert_eq!(stream.run_config.ticks, ticks as u64);
    assert!(
        stream.snapshots >= 48,
        "expected one snapshot per simulated hour, got {}",
        stream.snapshots
    );
    assert!(stream.melts > 0, "no melt events over two diurnal peaks");
    assert!(
        stream.hot_group_events > 0,
        "no hot-group events despite an undersized group"
    );
    assert_eq!(stream.summary.ticks_run, ticks as u64);
    assert_eq!(stream.summary.placements, result.placements);
    assert_eq!(stream.summary.dropped_jobs, result.dropped_jobs);

    // Every line individually round-trips through the public Event type.
    for line in text.lines() {
        let event: Event = serde_json::from_str(line).expect("line parses");
        let rewritten = serde_json::to_string(&event).expect("event serializes");
        let reparsed: Event = serde_json::from_str(&rewritten).expect("round-trip parses");
        assert_eq!(event, reparsed);
    }
}

/// The end-of-run summary agrees with the `SimulationResult` and with
/// the scheduler's own counters, and the phase spans account for the
/// tick time they claim to measure.
#[test]
fn summary_agrees_with_result_and_counters() {
    let policy = PolicyKind::vmt_wa(22.0);
    let telemetry = TelemetryConfig::new();
    let summary: SummaryHandle = telemetry.summary.clone();
    let result = run_instrumented(policy, 0, 1, telemetry);
    let summary = summary.get().expect("summary deposited");

    assert_eq!(summary.policy, result.scheduler_name);
    assert_eq!(summary.placements, result.placements);
    assert_eq!(summary.dropped_jobs, result.dropped_jobs);
    assert_eq!(summary.peak_cooling_w, result.cooling.peak().get());
    let counters = summary.scheduler.expect("vmt-wa exposes counters");
    assert_eq!(counters.placements, result.placements);
    assert_eq!(
        counters.hot_placements + counters.cold_placements,
        counters.placements
    );
    assert!(
        summary.phases.coverage() > 0.9,
        "phase spans cover {:.1}% of tick time",
        summary.phases.coverage() * 100.0
    );
    let report = vmt_telemetry::render_report(&summary);
    assert!(report.contains("tick phases"));
    assert!(report.contains(&result.scheduler_name));
}
