//! # vmt — Virtual Melting Temperature
//!
//! A full reproduction of *"Virtual Melting Temperature: Managing Server
//! Load to Minimize Cooling Overhead with Phase Change Materials"*
//! (Skach, Arora, Tullsen, Tang, Mars — ISCA 2018), built as a Rust
//! workspace. This facade crate re-exports every subsystem:
//!
//! * [`core`] — the paper's contribution: the VMT-TA and VMT-WA
//!   placement algorithms plus the round-robin and coolest-first
//!   baselines.
//! * [`dcsim`] — the event-driven cluster simulator.
//! * [`pcm`] — paraffin-wax phase-change models.
//! * [`thermal`] — server air-path and cooling-load models.
//! * [`power`] — linear server power models.
//! * [`workload`] — the five-workload catalog, diurnal traces, QoS.
//! * [`reliability`] — temperature-scaled failure models.
//! * [`tco`] — cooling-system cost and oversubscription models.
//! * [`experiments`] — regenerates every table and figure of the paper.
//!
//! # Quickstart
//!
//! Simulate two days of a wax-equipped cluster under VMT-TA and compare
//! its peak cooling load against round robin:
//!
//! ```
//! use vmt::core::{GroupingValue, PolicyKind, VmtConfig, VmtTa};
//! use vmt::dcsim::{ClusterConfig, Simulation};
//! use vmt::workload::{DiurnalTrace, TraceConfig};
//!
//! let cluster = ClusterConfig::paper_default(25);
//! let trace = DiurnalTrace::new(TraceConfig::paper_default());
//!
//! let baseline = Simulation::new(
//!     cluster.clone(),
//!     trace.clone(),
//!     PolicyKind::RoundRobin.build(&cluster),
//! )
//! .run();
//! let vmt = Simulation::new(
//!     cluster.clone(),
//!     trace,
//!     PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
//! )
//! .run();
//!
//! let reduction = vmt.compare_peak(&baseline).reduction_percent();
//! assert!(reduction > 5.0, "VMT should shave the peak, got {reduction}%");
//! ```

pub use vmt_core as core;
pub use vmt_dcsim as dcsim;
pub use vmt_experiments as experiments;
pub use vmt_pcm as pcm;
pub use vmt_power as power;
pub use vmt_reliability as reliability;
pub use vmt_tco as tco;
pub use vmt_thermal as thermal;
pub use vmt_units as units;
pub use vmt_workload as workload;
