//! Offline stand-in for the `rand` crate.
//!
//! Implements the small API surface this workspace uses: a seedable
//! `SmallRng`, `Rng::gen_range` over primitive ranges, and
//! `SliceRandom::shuffle`. The generator is an xoshiro256++ seeded via
//! splitmix64 — a different numeric stream than upstream rand, which is
//! fine here because the simulator only requires *internal* determinism
//! (same seed ⇒ same run), not stream compatibility with crates.io rand.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from `self` using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let x = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * frac
    }
}

macro_rules! int_range_impls {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $ty);
                }
                lo.wrapping_add(bounded(rng, span + 1) as $ty)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased draw from `[0, span)` via rejection sampling.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

/// Convenience methods available on every RNG.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        /// Exposes the raw generator state, so callers that checkpoint a
        /// simulation can persist the stream position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`state`].
        ///
        /// [`state`]: SmallRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let y = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
