//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal serde-compatible surface: the
//! [`Serialize`]/[`Deserialize`] traits (via an in-memory [`Value`] data
//! model rather than serde's visitor machinery), derive macros for the
//! struct/enum shapes this workspace uses, and enough std impls to
//! round-trip every serialized type in the simulator.
//!
//! The JSON mapping matches real serde's external representation for the
//! shapes in use here:
//!
//! * newtype structs serialize as their inner value (`Watts(500.0)` →
//!   `500.0`), matching both the default newtype behavior and
//!   `#[serde(transparent)]`;
//! * named-field structs serialize as objects in declaration order;
//! * unit enum variants serialize as strings, struct variants as
//!   `{"Variant": {...}}`, newtype variants as `{"Variant": value}`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// An in-memory tree mirroring the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; pairs keep insertion (declaration) order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A value that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Fallback used when a struct field is absent from its object.
    ///
    /// Mirrors serde's behavior of treating missing `Option` fields as
    /// `None`; every other type reports an error.
    #[doc(hidden)]
    fn from_missing_field(field: &'static str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field `{field}`")))
    }
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Owned-deserialization marker, as in real serde. The vendored
    /// [`crate::Deserialize`] is already owned, so this is a blanket
    /// alias.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Support function used by generated code: fetches and deserializes a
/// struct field, routing absent fields through
/// [`Deserialize::from_missing_field`].
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &Value, field: &'static str) -> Result<T, Error> {
    match obj.get_field(field) {
        Some(v) => T::from_value(v),
        None => T::from_missing_field(field),
    }
}

fn unexpected<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::msg(format!("expected {expected}, got {got:?}")))
}

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => <$ty>::try_from(n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    Value::I64(n) => <$ty>::try_from(n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    _ => unexpected("an integer", v),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => unexpected("a number", v),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => unexpected("a boolean", v),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => unexpected("a string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => unexpected("an array", v),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => unexpected(&format!("an array of length {N}"), v),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &'static str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => unexpected("a pair", v),
        }
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // Deterministic output regardless of hasher state.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => unexpected("an object", v),
        }
    }

    // A missing map field reads as an empty map (real serde's
    // `#[serde(default)]`, which this stand-in's derive cannot express).
    // Lets newer schemas add map-valued fields — e.g. `series` on
    // `MetricsSnapshot` — while still reading streams written before
    // the field existed.
    fn from_missing_field(_field: &'static str) -> Result<Self, Error> {
        Ok(HashMap::default())
    }
}
