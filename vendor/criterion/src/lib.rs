//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset used by this workspace's bench targets:
//! `Criterion::bench_function`/`benchmark_group`, groups with
//! `sample_size`/`bench_with_input`/`bench_function`/`finish`,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is wall-clock with a small
//! fixed time budget per benchmark so that `cargo test`, which also
//! builds and runs `harness = false` bench targets, stays fast; run the
//! targets directly (`cargo bench`) for longer, steadier samples.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    budget: Duration,
    /// (total elapsed, iterations) of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Calls `routine` repeatedly under a small time budget and records
    /// the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup iteration.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn report(group: Option<&str>, name: &str, result: Option<(Duration, u64)>) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    match result {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "bench {label:<50} {:>12.3} ms/iter ({iters} iters)",
                per_iter * 1e3
            );
        }
        _ => println!("bench {label:<50} (no measurement)"),
    }
}

fn run_bencher(budget: Duration, f: impl FnOnce(&mut Bencher)) -> Option<(Duration, u64)> {
    let mut bencher = Bencher {
        budget,
        result: None,
    };
    f(&mut bencher);
    bencher.result
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    /// Parses command-line arguments. The stand-in accepts and ignores
    /// the flags cargo passes to `harness = false` targets.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let result = run_bencher(self.budget, f);
        report(None, &id.name, result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the criterion sample count; the stand-in's time-budget
    /// measurement ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets criterion's per-benchmark measurement time.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let result = run_bencher(self.criterion.budget, f);
        report(Some(&self.name), &id.name, result);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        let result = run_bencher(self.criterion.budget, |b| f(b, input));
        report(Some(&self.name), &id.name, result);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = <$crate::Criterion as ::std::default::Default>::default()
                .configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        trivial(&mut c);
    }
}
