//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). Supports the item shapes used by this
//! workspace: non-generic structs with named fields, tuple structs, unit
//! structs, and enums with unit / named-field / tuple variants. The
//! `#[serde(...)]` helper attribute is accepted and ignored — the only
//! use in-tree is `#[serde(transparent)]` on `f64` newtypes, whose JSON
//! form is identical to the default newtype representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Skips `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(...)` starting at `i`; returns the new index.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn ident_at(tokens: &[TokenTree], i: usize, what: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

/// Splits a field/variant-element list on top-level commas, tracking
/// `<...>` depth (groups are already atomic token trees).
fn count_elements(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut elements = 0usize;
    let mut in_element = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    in_element = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_element {
            elements += 1;
            in_element = true;
        }
    }
    elements
}

/// Parses `name: Type, ...` lists (struct bodies and struct-variant
/// bodies), returning the field names in declaration order.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        names.push(ident_at(tokens, i, "a field name"));
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field, found {other:?}"),
        }
        // Consume the type: everything up to a top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(tokens, i, "a variant name");
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_elements(&inner))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = ident_at(&tokens, i, "`struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i, "an item name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_elements(&inner))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_variants(&inner)
                }
                other => panic!("serde derive: expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn named_to_value(fields: &[String], access_prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        pairs.join(", ")
    )
}

fn named_from_value(fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::__field({source}, \"{f}\")?,"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let to_value = match &fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!(
                        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => named_to_value(names, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {to_value} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                                items.join(", ")
                            )
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(\
                               ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{v}\"), {inner})])),",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let inner = named_to_value(names, "");
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(\
                               ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{v}\"), {inner})])),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     match self {{ {} }} \
                   }} \
                 }}",
                arms.join(" ")
            )
        }
    };
    body.parse().expect("serde derive: generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let from_value = match &fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                        .collect();
                    format!(
                        "match v {{ \
                           ::serde::Value::Array(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}({})), \
                           _ => ::std::result::Result::Err(::serde::Error::msg(\
                                  \"expected an array for tuple struct {name}\")), \
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    named_from_value(names, "v")
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{ {from_value} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                           {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => match __inner {{ \
                               ::serde::Value::Array(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{v}({})), \
                               _ => ::std::result::Result::Err(::serde::Error::msg(\
                                      \"expected an array for variant {v}\")), \
                             }},",
                            items.join(", ")
                        )
                    }
                    Fields::Named(names) => format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                        named_from_value(names, "__inner")
                    ),
                    Fields::Unit => unreachable!(),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{ \
                     match v {{ \
                       ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {units} \
                         __other => ::std::result::Result::Err(::serde::Error::msg(\
                           ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                       }}, \
                       ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                         let (__key, __inner) = &__pairs[0]; \
                         match __key.as_str() {{ \
                           {keyed} \
                           __other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                         }} \
                       }}, \
                       _ => ::std::result::Result::Err(::serde::Error::msg(\
                              \"invalid representation of enum {name}\")), \
                     }} \
                   }} \
                 }}",
                units = unit_arms.join(" "),
                keyed = keyed_arms.join(" ")
            )
        }
    };
    body.parse().expect("serde derive: generated impl parses")
}
