//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro over
//! functions whose arguments are drawn from primitive range strategies,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig::with_cases`.
//! Case generation is deterministic (fixed seed per test function, one
//! derived RNG per case); there is no shrinking — a failing case panics
//! with the drawn inputs' case number so it can be replayed.

/// Strategies: how to draw a value of some type.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Test-runner plumbing: configuration, errors, case loop.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Number of cases to run per property, plus room for future knobs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases to execute.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; whole-simulation properties
            // in this workspace make that needlessly slow.
            Config { cases: 32 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An explicit `prop_assert!`-style failure.
        Fail(String),
        /// The case asked to be discarded (unused here, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Drives the per-case loop for one property function.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Creates a runner with `config`.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per configured case with a per-case RNG.
        ///
        /// Panics (failing the enclosing `#[test]`) on the first case
        /// that returns an error.
        pub fn run_cases<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
        {
            // A fixed base keeps runs reproducible; per-case streams are
            // decorrelated by feeding the base RNG forward.
            let mut base = SmallRng::seed_from_u64(0x5EED_CAFE_F00D_D00D);
            for case_no in 0..self.config.cases {
                let mut rng = SmallRng::seed_from_u64(base.next_u64());
                match case(&mut rng) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case_no}: {msg}");
                    }
                }
            }
        }
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property-test functions. See the crate docs for the
/// supported grammar (argument lists of `name in strategy` pairs, with
/// an optional leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run_cases(|__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);)*
                let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __proptest_result
            });
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    // `if cond {} else { fail }` instead of `if !cond` keeps clippy's
    // neg_cmp_op_on_partial_ord from firing on float comparisons at the
    // caller's expansion site.
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({}:{})",
                    ::std::stringify!($cond),
                    ::std::file!(),
                    ::std::line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`: left = {:?}, right = {:?} ({}:{})",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    left,
                    right,
                    ::std::file!(),
                    ::std::line!()
                ),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left != right {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`: both = {:?} ({}:{})",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    left,
                    ::std::file!(),
                    ::std::line!()
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..1.0, n in 3usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..10).contains(&n));
        }

        #[test]
        fn eq_assertion_passes(n in 0u64..100) {
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, n + 1);
        }
    }

    proptest! {
        fn always_fails(x in 0.0f64..1.0) {
            prop_assert!(x > 2.0, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        always_fails();
    }
}
