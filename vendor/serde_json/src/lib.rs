//! Offline stand-in for `serde_json`: JSON text over the vendored
//! [`serde::Value`] data model.
//!
//! Floats are written with Rust's `{:?}` formatter (the shortest string
//! that round-trips) and parsed with `str::parse::<f64>` (correctly
//! rounded), so `f64` values survive a serialize/deserialize cycle
//! bit-exactly — the behavior real serde_json provides under its
//! `float_roundtrip` feature.

pub use serde::Error;
use serde::Value;

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value)
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        // Matches serde_json: non-finite floats become null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_value_pretty(out: &mut String, v: &Value, level: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, level + 1);
                write_value_pretty(out, item, level + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                indent(out, level + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, level + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 character. The slice
                    // is bounded to the 4-byte maximum so decoding stays
                    // O(1) per character — validating the whole
                    // remaining input here made parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(Error::msg("invalid UTF-8")),
                    };
                    let c = valid.chars().next().expect("non-empty valid prefix");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 5.0e-324, 1.7976931348623157e308, 35.7] {
            let text = super::to_string(&x).unwrap();
            let back: f64 = super::from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{0007}".to_string();
        let text = super::to_string(&s).unwrap();
        let back: String = super::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
